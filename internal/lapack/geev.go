package lapack

import (
	"math"
	"math/cmplx"

	"repro/internal/core"
)

// The nonsymmetric eigensolvers compute internally in float64 (real types)
// or complex128 (complex types); float32/complex64 inputs are promoted on
// entry and demoted on return (see DESIGN.md). This only ever increases
// accuracy relative to the reference single-precision paths.

func promoteReal[T core.Scalar](m, n int, a []T, lda int) []float64 {
	out := make([]float64, m*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			out[i+j*m] = core.Re(a[i+j*lda])
		}
	}
	return out
}

func demoteReal[T core.Scalar](m, n int, src []float64, a []T, lda int) {
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			a[i+j*lda] = core.FromFloat[T](src[i+j*m])
		}
	}
}

func promoteCmplx[T core.Scalar](m, n int, a []T, lda int) []complex128 {
	out := make([]complex128, m*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			out[i+j*m] = core.ToComplex(a[i+j*lda])
		}
	}
	return out
}

func demoteCmplx[T core.Scalar](m, n int, src []complex128, a []T, lda int) {
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			a[i+j*lda] = core.FromComplex[T](src[i+j*m])
		}
	}
}

// Geev computes the eigenvalues and, optionally, the left and/or right
// eigenvectors of a real general matrix (the xGEEV driver). Eigenvalues
// are (wr[i], wi[i]); complex pairs occupy consecutive entries with
// positive imaginary part first. Eigenvectors use the LAPACK real packing
// (see TrevcRight). a is destroyed. Returns i > 0 if the QR algorithm
// failed to converge.
func Geev[T core.Float](cfg *core.Config, jobvl, jobvr bool, n int, a []T, lda int, wr, wi []float64, vl []T, ldvl int, vr []T, ldvr int) int {
	if n == 0 {
		return 0
	}
	h := promoteReal(n, n, a, lda)
	scale := make([]float64, n)
	ilo, ihi := Gebal[float64]('B', n, h, n, scale)
	tau := make([]float64, max(0, n-1))
	Gehrd(cfg, n, ilo, ihi, h, n, tau)
	wantv := jobvl || jobvr
	var z []float64
	if wantv {
		z = make([]float64, n*n)
		Lacpy('A', n, n, h, n, z, n)
		Orghr(cfg, n, ilo, ihi, z, n, tau)
	}
	info := Hseqr(cfg, wantv, n, ilo, ihi, h, n, wr, wi, z, n)
	if info != 0 {
		return info
	}
	if jobvr {
		v := make([]float64, n*n)
		TrevcRight(n, h, n, wr, wi, z, n, v, n)
		Gebak[float64]('B', 'R', n, ilo, ihi, scale, n, v, n)
		normalizeEvecPairs(n, wr, wi, v, n)
		demoteReal(n, n, v, vr, ldvr)
	}
	if jobvl {
		v := make([]float64, n*n)
		TrevcLeft(n, h, n, wr, wi, z, n, v, n)
		Gebak[float64]('B', 'L', n, ilo, ihi, scale, n, v, n)
		normalizeEvecPairs(n, wr, wi, v, n)
		demoteReal(n, n, v, vl, ldvl)
	}
	demoteReal(n, n, h, a, lda)
	return 0
}

// normalizeEvecPairs scales each eigenvector to unit Euclidean norm,
// treating a (real, imag) column pair as one complex vector, and rotates
// complex vectors so the largest-magnitude component is real (the xGEEV
// convention).
func normalizeEvecPairs(n int, wr, wi []float64, v []float64, ldv int) {
	for j := 0; j < n; j++ {
		if wi[j] == 0 {
			nrm := 0.0
			for i := 0; i < n; i++ {
				nrm += v[i+j*ldv] * v[i+j*ldv]
			}
			nrm = math.Sqrt(nrm)
			if nrm > 0 {
				for i := 0; i < n; i++ {
					v[i+j*ldv] /= nrm
				}
			}
			continue
		}
		// Pair (j, j+1).
		nrm := 0.0
		for i := 0; i < n; i++ {
			nrm += v[i+j*ldv]*v[i+j*ldv] + v[i+(j+1)*ldv]*v[i+(j+1)*ldv]
		}
		nrm = math.Sqrt(nrm)
		var rot complex128 = 1
		maxa := -1.0
		for i := 0; i < n; i++ {
			c := complex(v[i+j*ldv], v[i+(j+1)*ldv])
			if a := cmplx.Abs(c); a > maxa {
				maxa = a
				rot = cmplx.Conj(c) / complex(a, 0)
			}
		}
		for i := 0; i < n; i++ {
			c := complex(v[i+j*ldv], v[i+(j+1)*ldv]) * rot / complex(nrm, 0)
			v[i+j*ldv] = real(c)
			v[i+(j+1)*ldv] = imag(c)
		}
		j++
	}
}

// GeevC computes the eigenvalues and, optionally, eigenvectors of a
// complex general matrix (the xGEEV complex driver). w receives the
// eigenvalues; eigenvectors are returned as complex columns.
func GeevC[T core.Cmplx](cfg *core.Config, jobvl, jobvr bool, n int, a []T, lda int, w []complex128, vl []T, ldvl int, vr []T, ldvr int) int {
	if n == 0 {
		return 0
	}
	h := promoteCmplx(n, n, a, lda)
	scale := make([]float64, n)
	ilo, ihi := Gebal[complex128]('B', n, h, n, scale)
	tau := make([]complex128, max(0, n-1))
	Gehrd(cfg, n, ilo, ihi, h, n, tau)
	wantv := jobvl || jobvr
	var z []complex128
	if wantv {
		z = make([]complex128, n*n)
		Lacpy('A', n, n, h, n, z, n)
		Orghr(cfg, n, ilo, ihi, z, n, tau)
	}
	info := HseqrC(cfg, wantv, n, ilo, ihi, h, n, w, z, n)
	if info != 0 {
		return info
	}
	normC := func(v []complex128) {
		for j := 0; j < n; j++ {
			nrm := 0.0
			maxa := -1.0
			var rot complex128 = 1
			for i := 0; i < n; i++ {
				c := v[i+j*n]
				nrm += real(c)*real(c) + imag(c)*imag(c)
				if a := cmplx.Abs(c); a > maxa {
					maxa = a
					rot = cmplx.Conj(c) / complex(a, 0)
				}
			}
			nrm = math.Sqrt(nrm)
			if nrm > 0 {
				s := rot / complex(nrm, 0)
				for i := 0; i < n; i++ {
					v[i+j*n] *= s
				}
			}
		}
	}
	if jobvr {
		v := make([]complex128, n*n)
		TrevcRightC(n, h, n, z, n, v, n)
		Gebak[complex128]('B', 'R', n, ilo, ihi, scale, n, v, n)
		normC(v)
		demoteCmplx(n, n, v, vr, ldvr)
	}
	if jobvl {
		v := make([]complex128, n*n)
		TrevcLeftC(n, h, n, z, n, v, n)
		Gebak[complex128]('B', 'L', n, ilo, ihi, scale, n, v, n)
		normC(v)
		demoteCmplx(n, n, v, vl, ldvl)
	}
	demoteCmplx(n, n, h, a, lda)
	return 0
}

// Gees computes the real Schur factorization A = Z·T·Zᵀ of a real general
// matrix (the xGEES driver). On return a holds T and, if jobvs, vs holds
// the orthogonal Schur vectors Z. If sel is non-nil the eigenvalues for
// which sel returns true are reordered to the top-left of T and sdim
// reports their count. Returns info > 0 on QR failure.
func Gees[T core.Float](cfg *core.Config, jobvs bool, sel func(wr, wi float64) bool, n int, a []T, lda int, wr, wi []float64, vs []T, ldvs int) (sdim, info int) {
	if n == 0 {
		return 0, 0
	}
	h := promoteReal(n, n, a, lda)
	tau := make([]float64, max(0, n-1))
	Gehrd(cfg, n, 0, n-1, h, n, tau)
	z := make([]float64, n*n)
	Lacpy('A', n, n, h, n, z, n)
	Orghr(cfg, n, 0, n-1, z, n, tau)
	info = Hseqr(cfg, true, n, 0, n-1, h, n, wr, wi, z, n)
	if info != 0 {
		return 0, info
	}
	if sel != nil {
		sdim = reorderSchur(cfg, n, h, n, z, n, wr, wi, sel)
	}
	demoteReal(n, n, h, a, lda)
	if jobvs {
		demoteReal(n, n, z, vs, ldvs)
	}
	return sdim, 0
}

// GeesC computes the complex Schur factorization A = Z·T·Zᴴ (the complex
// xGEES driver), with optional eigenvalue reordering by sel.
func GeesC[T core.Cmplx](cfg *core.Config, jobvs bool, sel func(w complex128) bool, n int, a []T, lda int, w []complex128, vs []T, ldvs int) (sdim, info int) {
	if n == 0 {
		return 0, 0
	}
	h := promoteCmplx(n, n, a, lda)
	tau := make([]complex128, max(0, n-1))
	Gehrd(cfg, n, 0, n-1, h, n, tau)
	z := make([]complex128, n*n)
	Lacpy('A', n, n, h, n, z, n)
	Orghr(cfg, n, 0, n-1, z, n, tau)
	info = HseqrC(cfg, true, n, 0, n-1, h, n, w, z, n)
	if info != 0 {
		return 0, info
	}
	if sel != nil {
		// Selection sort on the diagonal using unitary swaps (xTREXC).
		for target := 0; target < n; target++ {
			src := -1
			for j := target; j < n; j++ {
				if sel(h[j+j*n]) {
					src = j
					break
				}
			}
			if src < 0 {
				break
			}
			for j := src; j > target; j-- {
				TrexcC(n, h, n, z, n, j, j-1)
			}
			sdim++
		}
		for i := 0; i < n; i++ {
			w[i] = h[i+i*n]
		}
	}
	demoteCmplx(n, n, h, a, lda)
	if jobvs {
		demoteCmplx(n, n, z, vs, ldvs)
	}
	return sdim, 0
}

// TrexcC swaps adjacent diagonal elements ifst and ilst (|ifst−ilst| = 1)
// of a complex upper triangular Schur matrix by a unitary similarity
// transformation, updating q (xTREXC for adjacent positions).
func TrexcC(n int, t []complex128, ldt int, q []complex128, ldq int, ifst, ilst int) {
	j := min(ifst, ilst)
	// Rotation that swaps T(j,j) and T(j+1,j+1).
	t11 := t[j+j*ldt]
	t22 := t[j+1+(j+1)*ldt]
	t12 := t[j+(j+1)*ldt]
	cs, sn, _ := zlartg(t12, t22-t11)
	// Apply from the left and right. T(j, j+1) is invariant under this
	// particular rotation (r·cs = t12), so rows start at column j+2.
	for k := j + 2; k < n; k++ {
		x, y := t[j+k*ldt], t[j+1+k*ldt]
		t[j+k*ldt] = complex(cs, 0)*x + sn*y
		t[j+1+k*ldt] = complex(cs, 0)*y - cmplx.Conj(sn)*x
	}
	for k := 0; k < j; k++ {
		x, y := t[k+j*ldt], t[k+(j+1)*ldt]
		t[k+j*ldt] = complex(cs, 0)*x + cmplx.Conj(sn)*y
		t[k+(j+1)*ldt] = complex(cs, 0)*y - sn*x
	}
	t[j+j*ldt] = t22
	t[j+1+(j+1)*ldt] = t11
	t[j+1+j*ldt] = 0
	if q != nil {
		for k := 0; k < n; k++ {
			x, y := q[k+j*ldq], q[k+(j+1)*ldq]
			q[k+j*ldq] = complex(cs, 0)*x + cmplx.Conj(sn)*y
			q[k+(j+1)*ldq] = complex(cs, 0)*y - sn*x
		}
	}
}

// zlartg generates a complex plane rotation: [cs sn; -conj(sn) cs]·[f; g]
// = [r; 0] with real cs (xLARTG, complex).
func zlartg(f, g complex128) (cs float64, sn, r complex128) {
	if g == 0 {
		return 1, 0, f
	}
	if f == 0 {
		return 0, cmplx.Conj(g) / complex(cmplx.Abs(g), 0), complex(cmplx.Abs(g), 0)
	}
	af, ag := cmplx.Abs(f), cmplx.Abs(g)
	d := math.Hypot(af, ag)
	cs = af / d
	fa := f / complex(af, 0)
	sn = fa * cmplx.Conj(g) / complex(d, 0)
	r = fa * complex(d, 0)
	return cs, sn, r
}

// reorderSchur moves the eigenvalues selected by sel to the top-left of a
// real Schur form by repeated adjacent swaps (xTRSEN's reordering, built
// on Laexc). It returns the number of selected eigenvalues. Complex pairs
// are kept together.
func reorderSchur(cfg *core.Config, n int, t []float64, ldt int, q []float64, ldq int, wr, wi []float64, sel func(wr, wi float64) bool) int {
	// Determine block starts.
	sdim := 0
	target := 0
	for target < n {
		// Find the next selected block at or after target.
		src := -1
		var srcSize int
		j := target
		for j < n {
			size := 1
			if j < n-1 && t[j+1+j*ldt] != 0 {
				size = 2
			}
			if sel(wr[j], wi[j]) || (size == 2 && sel(wr[j+1], wi[j+1])) {
				src = j
				srcSize = size
				break
			}
			j += size
		}
		if src < 0 {
			break
		}
		// Bubble the block up to target with adjacent swaps.
		for src > target {
			// Block immediately above src.
			above := src - 1
			aboveSize := 1
			if above > 0 && t[above+(above-1)*ldt] != 0 {
				above--
				aboveSize = 2
			}
			if Laexc(cfg, true, n, t, ldt, q, ldq, above, aboveSize, srcSize) != 0 {
				// Swap too ill-conditioned; give up on this block.
				break
			}
			src = above
		}
		// Refresh the eigenvalues from the (possibly modified) T.
		extractSchurEigenvalues(n, t, ldt, wr, wi)
		sdim += srcSize
		target = src + srcSize
	}
	extractSchurEigenvalues(n, t, ldt, wr, wi)
	return sdim
}

// extractSchurEigenvalues reads the eigenvalues off a real Schur form.
func extractSchurEigenvalues(n int, t []float64, ldt int, wr, wi []float64) {
	for i := 0; i < n; {
		if i < n-1 && t[i+1+i*ldt] != 0 {
			_, _, _, _, r1r, r1i, r2r, r2i, _, _ := Lanv2(t[i+i*ldt], t[i+(i+1)*ldt], t[i+1+i*ldt], t[i+1+(i+1)*ldt])
			wr[i], wi[i] = r1r, r1i
			wr[i+1], wi[i+1] = r2r, r2i
			i += 2
		} else {
			wr[i] = t[i+i*ldt]
			wi[i] = 0
			i++
		}
	}
}
