package lapack

import (
	"repro/internal/blas"
	"repro/internal/core"
)

// Trtrs solves op(A)·X = B for a triangular matrix, checking for exact
// singularity first (xTRTRS). Returns i > 0 if A(i,i) is exactly zero.
func Trtrs[T core.Scalar](cfg *core.Config, uplo Uplo, trans Trans, diag Diag, n, nrhs int, a []T, lda int, b []T, ldb int) int {
	if diag == NonUnit {
		for i := 0; i < n; i++ {
			if a[i+i*lda] == 0 {
				return i + 1
			}
		}
	}
	blas.Trsm(cfg, Left, uplo, trans, diag, n, nrhs, core.FromFloat[T](1), a, lda, b, ldb)
	return 0
}

// Gels solves over- or under-determined systems op(A)·X = B using a QR or
// LQ factorization, assuming A has full rank (the xGELS driver). A is m×n;
// B is max(m, n)×nrhs: on entry its first rows hold B, on exit its first
// rows hold the solution (and, for the overdetermined case, the trailing
// rows of B hold residual information). Returns i > 0 if the triangular
// factor is exactly singular.
func Gels[T core.Scalar](cfg *core.Config, trans Trans, m, n, nrhs int, a []T, lda int, b []T, ldb int) int {
	mn := min(m, n)
	if mn == 0 || nrhs == 0 {
		return 0
	}
	tau := make([]T, mn)
	ctrans := ConjTrans
	if m >= n {
		Geqrf(cfg, m, n, a, lda, tau)
		if trans == NoTrans {
			// Least squares: x = R⁻¹·(Qᴴ·b)(1:n).
			Ormqr(cfg, Left, ctrans, m, nrhs, n, a, lda, tau, b, ldb)
			return Trtrs(cfg, Upper, NoTrans, NonUnit, n, nrhs, a, lda, b, ldb)
		}
		// Minimum-norm solution of Aᴴ·x = b: x = Q·[R⁻ᴴ·b; 0].
		if info := Trtrs(cfg, Upper, ctrans, NonUnit, n, nrhs, a, lda, b, ldb); info != 0 {
			return info
		}
		for j := 0; j < nrhs; j++ {
			for i := n; i < m; i++ {
				b[i+j*ldb] = 0
			}
		}
		Ormqr(cfg, Left, NoTrans, m, nrhs, n, a, lda, tau, b, ldb)
		return 0
	}
	Gelqf(cfg, m, n, a, lda, tau)
	if trans == NoTrans {
		// Minimum-norm solution: x = Qᴴ·[L⁻¹·b; 0].
		if info := Trtrs(cfg, Lower, NoTrans, NonUnit, m, nrhs, a, lda, b, ldb); info != 0 {
			return info
		}
		for j := 0; j < nrhs; j++ {
			for i := m; i < n; i++ {
				b[i+j*ldb] = 0
			}
		}
		Ormlq(cfg, Left, ctrans, n, nrhs, m, a, lda, tau, b, ldb)
		return 0
	}
	// Overdetermined Aᴴ·x = b: x = L⁻ᴴ·(Q·b)(1:m).
	Ormlq(cfg, Left, NoTrans, n, nrhs, m, a, lda, tau, b, ldb)
	return Trtrs(cfg, Lower, ctrans, NonUnit, m, nrhs, a, lda, b, ldb)
}

// Gelsx computes the minimum-norm solution to a possibly rank-deficient
// least squares problem using a complete orthogonal factorization
// (the xGELSX driver, implemented with the xGELSY algorithm: column-pivoted
// QR, rank decision against rcond on the R diagonal, RZ factorization of
// the leading rows, triangular solve and back-permutation). Returns the
// determined rank. B is max(m, n)×nrhs.
func Gelsx[T core.Scalar](cfg *core.Config, m, n, nrhs int, a []T, lda int, jpvt []int, rcond float64, b []T, ldb int) (rank int) {
	mn := min(m, n)
	if mn == 0 {
		return 0
	}
	if rcond <= 0 {
		rcond = core.Eps[T]()
	}
	tau := make([]T, mn)
	Geqpf(cfg, m, n, a, lda, jpvt, tau)
	// Determine the numerical rank from the R diagonal.
	rank = 0
	r00 := core.Abs(a[0])
	for i := 0; i < mn; i++ {
		if core.Abs(a[i+i*lda]) > rcond*r00 {
			rank++
		} else {
			break
		}
	}
	if rank == 0 {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				b[i+j*ldb] = 0
			}
		}
		return 0
	}
	// B := Qᴴ·B.
	Ormqr(cfg, Left, ConjTrans, m, nrhs, mn, a, lda, tau, b, ldb)
	var tauz []T
	if rank < n {
		// Complete orthogonal factorization: R(1:rank, 1:n) = [T 0]·Z.
		tauz = make([]T, rank)
		Tzrzf(cfg, rank, n, a, lda, tauz)
	}
	// Solve T(1:rank,1:rank)·y = (QᴴB)(1:rank).
	Trtrs(cfg, Upper, NoTrans, NonUnit, rank, nrhs, a, lda, b, ldb)
	for j := 0; j < nrhs; j++ {
		for i := rank; i < n; i++ {
			b[i+j*ldb] = 0
		}
	}
	if rank < n {
		// B := Zᴴ·[y; 0].
		Ormrz(cfg, Left, ConjTrans, n, nrhs, rank, n-rank, a, lda, tauz, b, ldb)
	}
	// Undo the column permutation: x(jpvt[i]) = y(i).
	tmp := make([]T, n)
	for j := 0; j < nrhs; j++ {
		for i := 0; i < n; i++ {
			tmp[jpvt[i]] = b[i+j*ldb]
		}
		for i := 0; i < n; i++ {
			b[i+j*ldb] = tmp[i]
		}
	}
	return rank
}

// Gglse solves the linear equality-constrained least squares problem
//
//	minimize ‖c − A·x‖₂  subject to  B·x = d
//
// (the xGGLSE driver). A is m×n, B is p×n with p <= n <= m+p, c has length
// m and d length p. The solution is written to x (length n). The method is
// the textbook null-space approach: a QR factorization of Bᴴ splits x into
// a particular solution of the constraint plus a free part solved by
// unconstrained least squares (see DESIGN.md, substitutions). Returns
// info > 0 if B or the reduced A lacks full rank.
func Gglse[T core.Scalar](cfg *core.Config, m, n, p int, a []T, lda int, b []T, ldb int, c, d, x []T) int {
	one := core.FromFloat[T](1)
	// Factor Bᴴ = Q·[R; 0], so B = [Rᴴ 0]·Qᴴ and x = Q·[y1; y2].
	bh := make([]T, n*p)
	for i := 0; i < p; i++ {
		for j := 0; j < n; j++ {
			bh[j+i*n] = core.Conj(b[i+j*ldb])
		}
	}
	tau := make([]T, min(n, p))
	Geqrf(cfg, n, p, bh, n, tau)
	// Constraint: B·x = Rᴴ·y1 = d.
	y := make([]T, n)
	copy(y[:p], d[:p])
	if info := Trtrs(cfg, Upper, ConjTrans, NonUnit, p, 1, bh, n, y, n); info != 0 {
		return info
	}
	// A·Q splits into [A1 A2]: c̃ = c − A1·y1; minimize over y2.
	aq := make([]T, m*n)
	Lacpy('A', m, n, a, lda, aq, m)
	Ormqr(cfg, Right, NoTrans, m, n, min(n, p), bh, n, tau, aq, m)
	ct := make([]T, m)
	copy(ct, c[:m])
	blas.Gemv(cfg, NoTrans, m, p, -one, aq, m, y, 1, one, ct, 1)
	// Unconstrained LS for y2 in the trailing n−p columns.
	if n > p {
		a2 := make([]T, m*(n-p))
		Lacpy('A', m, n-p, aq[p*m:], m, a2, m)
		rhs := make([]T, max(m, n-p))
		copy(rhs, ct)
		if info := Gels(cfg, NoTrans, m, n-p, 1, a2, m, rhs, max(m, n-p)); info != 0 {
			return p + info
		}
		copy(y[p:n], rhs[:n-p])
	}
	// x = Q·y.
	copy(x[:n], y)
	Ormqr(cfg, Left, NoTrans, n, 1, min(n, p), bh, n, tau, x, n)
	return 0
}

// Ggglm solves the general Gauss–Markov linear model problem
//
//	minimize ‖y‖₂  subject to  d = A·x + B·y
//
// (the xGGGLM driver). A is n×m, B is n×p with m <= n <= m+p; d has length
// n. The solutions are written to x (length m) and y (length p). The
// method factors A = Q·[R; 0] and solves the reduced problem for y by
// minimum-norm least squares (see DESIGN.md, substitutions). Returns
// info > 0 on rank deficiency.
func Ggglm[T core.Scalar](cfg *core.Config, n, m, p int, a []T, lda int, b []T, ldb int, d, x, y []T) int {
	// Factor A = Q·[R; 0].
	tau := make([]T, min(n, m))
	Geqrf(cfg, n, m, a, lda, tau)
	// Transform: Qᴴ·d and Qᴴ·B.
	qd := make([]T, n)
	copy(qd, d[:n])
	Ormqr(cfg, Left, ConjTrans, n, 1, min(n, m), a, lda, tau, qd, n)
	qb := make([]T, n*p)
	Lacpy('A', n, p, b, ldb, qb, n)
	Ormqr(cfg, Left, ConjTrans, n, p, min(n, m), a, lda, tau, qb, n)
	// Bottom block: (QᴴB)(m+1:n, :)·y = (Qᴴd)(m+1:n) with minimum ‖y‖.
	if n > m {
		b2 := make([]T, (n-m)*p)
		Lacpy('A', n-m, p, qb[m:], n, b2, n-m)
		rhs := make([]T, max(n-m, p))
		copy(rhs[:n-m], qd[m:n])
		if info := Gels(cfg, NoTrans, n-m, p, 1, b2, n-m, rhs, max(n-m, p)); info != 0 {
			return m + info
		}
		copy(y[:p], rhs[:p])
	} else {
		for i := 0; i < p; i++ {
			y[i] = 0
		}
	}
	// Top block: R·x = (Qᴴd)(1:m) − (QᴴB)(1:m,:)·y.
	one := core.FromFloat[T](1)
	blas.Gemv(cfg, NoTrans, m, p, -one, qb, n, y, 1, one, qd, 1)
	if info := Trtrs(cfg, Upper, NoTrans, NonUnit, m, 1, a, lda, qd, n); info != 0 {
		return info
	}
	copy(x[:m], qd[:m])
	return 0
}
