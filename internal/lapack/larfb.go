package lapack

import (
	"repro/internal/blas"
	"repro/internal/core"
)

// Larft forms the triangular factor T of a block reflector
// H = I − V·T·Vᴴ from k forward, columnwise-stored elementary reflectors
// (xLARFT with direct='F', storev='C'). v is n×k with the reflectors in
// its columns (unit diagonal implicit); t is k×k upper triangular output.
//
// Above a small size threshold the Gram matrix VᴴV — the only O(n·k²) part
// of the computation — is built with a single rank-n Herk on a cleaned copy
// of V (explicit unit diagonal, zeroed upper triangle), so the T build runs
// on the packed Level-3 engine instead of k strided Gemv sweeps.
func Larft[T core.Scalar](cfg *core.Config, n, k int, v []T, ldv int, tau []T, t []T, ldt int) {
	if n >= 64 && k >= 8 {
		larftGemm(cfg, n, k, v, ldv, tau, t, ldt)
		return
	}
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for j := 0; j <= i; j++ {
				t[j+i*ldt] = 0
			}
			continue
		}
		vii := v[i+i*ldv]
		v[i+i*ldv] = core.FromFloat[T](1)
		// t(0:i, i) = −tau(i) · V(i:n, 0:i)ᴴ · V(i:n, i)
		blas.Gemv(cfg, ConjTrans, n-i, i, -tau[i], v[i:], ldv, v[i+i*ldv:], 1,
			core.FromFloat[T](0), t[i*ldt:], 1)
		v[i+i*ldv] = vii
		// t(0:i, i) = T(0:i, 0:i) · t(0:i, i)
		blas.Trmv(Upper, NoTrans, NonUnit, i, t, ldt, t[i*ldt:], 1)
		t[i+i*ldt] = tau[i]
	}
}

// larftGemm is the Level-3 path of Larft: s = VᴴV once via Herk, then the
// usual triangular recurrence t(0:i,i) = T·(−tau_i·s(0:i,i)) per column.
// The strict upper triangle of s(j,i), j < i, equals V(i:n,j)ᴴ·V(i:n,i)
// exactly because the cleaned copy has an explicit unit diagonal and zeros
// above it.
func larftGemm[T core.Scalar](cfg *core.Config, n, k int, v []T, ldv int, tau []T, t []T, ldt int) {
	vc := make([]T, n*k)
	for j := 0; j < k; j++ {
		col := vc[j*n : j*n+n]
		col[j] = core.FromFloat[T](1)
		copy(col[j+1:], v[j+1+j*ldv:j*ldv+n])
	}
	s := make([]T, k*k)
	blas.Herk(cfg, Upper, ConjTrans, k, n, 1, vc, n, 0, s, k)
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for j := 0; j <= i; j++ {
				t[j+i*ldt] = 0
			}
			continue
		}
		for j := 0; j < i; j++ {
			t[j+i*ldt] = -tau[i] * s[j+i*k]
		}
		blas.Trmv(Upper, NoTrans, NonUnit, i, t, ldt, t[i*ldt:], 1)
		t[i+i*ldt] = tau[i]
	}
}

// Larfb applies a block reflector H or Hᴴ from the left to an m×n matrix C
// (xLARFB with side='L', direct='F', storev='C'). v is m×k, t is the k×k
// factor from Larft; work must have length at least n*k.
func Larfb[T core.Scalar](cfg *core.Config, trans Trans, m, n, k int, v []T, ldv int, t []T, ldt int, c []T, ldc int, work []T) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	one := core.FromFloat[T](1)
	ldw := max(1, n)
	w := work[:ldw*k]
	// W := C1ᴴ (n×k), where C1 = C(0:k, :).
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			w[i+j*ldw] = core.Conj(c[j+i*ldc])
		}
	}
	// W := W · V1 (V1 unit lower triangular k×k).
	blas.Trmm(Right, Lower, NoTrans, Unit, n, k, one, v, ldv, w, ldw)
	if m > k {
		// W += C2ᴴ · V2.
		blas.Gemm(cfg, ConjTrans, NoTrans, n, k, m-k, one, c[k:], ldc, v[k:], ldv, one, w, ldw)
	}
	// W := W · Tᴴ (apply H) or W · T (apply Hᴴ).
	tt := ConjTrans
	if trans != NoTrans {
		tt = NoTrans
	}
	blas.Trmm(Right, Upper, tt, NonUnit, n, k, one, t, ldt, w, ldw)
	// C2 −= V2 · Wᴴ.
	if m > k {
		blas.Gemm(cfg, NoTrans, ConjTrans, m-k, n, k, -one, v[k:], ldv, w, ldw, one, c[k:], ldc)
	}
	// W := W · V1ᴴ.
	blas.Trmm(Right, Lower, ConjTrans, Unit, n, k, one, v, ldv, w, ldw)
	// C1 −= Wᴴ.
	for j := 0; j < n; j++ {
		for i := 0; i < k; i++ {
			c[i+j*ldc] -= core.Conj(w[j+i*ldw])
		}
	}
}

// larfbRight applies a block reflector H or Hᴴ from the right to an m×n
// matrix C (xLARFB with side='R', direct='F', storev='C'): C := C·H (trans
// = NoTrans) or C·Hᴴ. v is n×k columnwise, t is the k×k factor from Larft;
// work must have length at least m*k.
func larfbRight[T core.Scalar](cfg *core.Config, trans Trans, m, n, k int, v []T, ldv int, t []T, ldt int, c []T, ldc int, work []T) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	one := core.FromFloat[T](1)
	ldw := max(1, m)
	w := work[:ldw*k]
	// W := C1 (m×k), where C1 = C(:, 0:k).
	for j := 0; j < k; j++ {
		copy(w[j*ldw:j*ldw+m], c[j*ldc:j*ldc+m])
	}
	// W := W · V1 (V1 unit lower triangular k×k).
	blas.Trmm(Right, Lower, NoTrans, Unit, m, k, one, v, ldv, w, ldw)
	if n > k {
		// W += C2 · V2.
		blas.Gemm(cfg, NoTrans, NoTrans, m, k, n-k, one, c[k*ldc:], ldc, v[k:], ldv, one, w, ldw)
	}
	// W := W · T (apply H) or W · Tᴴ (apply Hᴴ).
	tt := NoTrans
	if trans != NoTrans {
		tt = ConjTrans
	}
	blas.Trmm(Right, Upper, tt, NonUnit, m, k, one, t, ldt, w, ldw)
	// C2 −= W · V2ᴴ.
	if n > k {
		blas.Gemm(cfg, NoTrans, ConjTrans, m, n-k, k, -one, w, ldw, v[k:], ldv, one, c[k*ldc:], ldc)
	}
	// W := W · V1ᴴ.
	blas.Trmm(Right, Lower, ConjTrans, Unit, m, k, one, v, ldv, w, ldw)
	// C1 −= W.
	for j := 0; j < k; j++ {
		for i := 0; i < m; i++ {
			c[i+j*ldc] -= w[i+j*ldw]
		}
	}
}

// geqrfBlocked is the Level-3 QR factorization (xGEQRF): panels are
// factored with the unblocked kernel and the trailing matrix is updated
// with block reflectors.
func geqrfBlocked[T core.Scalar](cfg *core.Config, m, n int, a []T, lda int, tau []T, nb int) {
	mn := min(m, n)
	work := make([]T, max(1, n)*nb)
	tmat := make([]T, nb*nb)
	panelWork := make([]T, max(1, n))
	for j := 0; j < mn; j += nb {
		jb := min(nb, mn-j)
		cfg.Checkpoint() // once per panel
		Geqr2(cfg, m-j, jb, a[j+j*lda:], lda, tau[j:j+jb], panelWork)
		if j+jb < n {
			Larft(cfg, m-j, jb, a[j+j*lda:], lda, tau[j:j+jb], tmat, nb)
			Larfb(cfg, ConjTrans, m-j, n-j-jb, jb, a[j+j*lda:], lda, tmat, nb,
				a[j+(j+jb)*lda:], lda, work)
		}
	}
}

// gelqfBlocked is the Level-3 LQ factorization (xGELQF). Gelq2 stores row i
// of the panel as conj(v_i), so each panel's reflectors are materialized
// into a columnwise scratch V (unit diagonal explicit, conjugated tail);
// the trailing rows then take C := C·(I − V·T·Vᴴ) through the columnwise
// Larft and the right-side Larfb — no rowwise variants needed.
func gelqfBlocked[T core.Scalar](cfg *core.Config, m, n int, a []T, lda int, tau []T, nb int) {
	mn := min(m, n)
	work := make([]T, max(1, m)*nb)
	tmat := make([]T, nb*nb)
	panelWork := make([]T, max(1, m))
	vbuf := make([]T, max(1, n)*nb)
	for j := 0; j < mn; j += nb {
		jb := min(nb, mn-j)
		Gelq2(cfg, jb, n-j, a[j+j*lda:], lda, tau[j:j+jb], panelWork)
		if j+jb < m {
			nv := n - j
			for i := 0; i < jb; i++ {
				col := vbuf[i*nv : i*nv+nv]
				for l := 0; l < i; l++ {
					col[l] = 0
				}
				col[i] = core.FromFloat[T](1)
				for l := i + 1; l < nv; l++ {
					col[l] = core.Conj(a[j+i+(j+l)*lda])
				}
			}
			Larft(cfg, nv, jb, vbuf, nv, tau[j:j+jb], tmat, nb)
			larfbRight(cfg, NoTrans, m-j-jb, nv, jb, vbuf, nv, tmat, nb,
				a[j+jb+j*lda:], lda, work)
		}
	}
}

// orgqrBlocked generates the explicit Q factor from Geqrf output using block
// reflectors (xORGQR/xUNGQR): blocks are applied back-to-front, each via one
// Larft + Larfb pair plus an unblocked Org2r on the block's own columns.
func orgqrBlocked[T core.Scalar](cfg *core.Config, m, n, k int, a []T, lda int, tau []T, nb int) {
	ki := ((k - 1) / nb) * nb
	kk := min(k, ki+nb)
	// Columns kk:n only see reflectors kk:k; handle them unblocked first.
	for j := kk; j < n; j++ {
		for i := 0; i < kk; i++ {
			a[i+j*lda] = 0
		}
	}
	if kk < n {
		Org2r(cfg, m-kk, n-kk, k-kk, a[kk+kk*lda:], lda, tau[kk:])
	}
	tmat := make([]T, nb*nb)
	work := make([]T, max(1, n)*nb)
	for i := ki; i >= 0; i -= nb {
		ib := min(nb, k-i)
		if i+ib < n {
			Larft(cfg, m-i, ib, a[i+i*lda:], lda, tau[i:i+ib], tmat, nb)
			Larfb(cfg, NoTrans, m-i, n-i-ib, ib, a[i+i*lda:], lda, tmat, nb,
				a[i+(i+ib)*lda:], lda, work)
		}
		Org2r(cfg, m-i, ib, ib, a[i+i*lda:], lda, tau[i:i+ib])
		for j := i; j < i+ib; j++ {
			for l := 0; l < i; l++ {
				a[l+j*lda] = 0
			}
		}
	}
}

// ormqrBlocked applies Q or Qᴴ from Geqrf output to C using block
// reflectors (xORMQR/xUNMQR).
func ormqrBlocked[T core.Scalar](cfg *core.Config, side Side, trans Trans, m, n, k int, a []T, lda int, tau []T, c []T, ldc int, nb int) {
	notran := trans == NoTrans
	// Block order: same reflector ordering as the unblocked Ormqr loop.
	forward := (side == Left) != notran
	tmat := make([]T, nb*nb)
	var work []T
	if side == Left {
		work = make([]T, max(1, n)*nb)
	} else {
		work = make([]T, max(1, m)*nb)
	}
	step := func(i int) {
		ib := min(nb, k-i)
		if side == Left {
			Larft(cfg, m-i, ib, a[i+i*lda:], lda, tau[i:i+ib], tmat, nb)
			Larfb(cfg, trans, m-i, n, ib, a[i+i*lda:], lda, tmat, nb, c[i:], ldc, work)
		} else {
			Larft(cfg, n-i, ib, a[i+i*lda:], lda, tau[i:i+ib], tmat, nb)
			larfbRight(cfg, trans, m, n-i, ib, a[i+i*lda:], lda, tmat, nb, c[i*ldc:], ldc, work)
		}
	}
	if forward {
		for i := 0; i < k; i += nb {
			step(i)
		}
	} else {
		for i := ((k - 1) / nb) * nb; i >= 0; i -= nb {
			step(i)
		}
	}
}
