package lapack

import (
	"repro/internal/blas"
	"repro/internal/core"
)

// Larft forms the triangular factor T of a block reflector
// H = I − V·T·Vᴴ from k forward, columnwise-stored elementary reflectors
// (xLARFT with direct='F', storev='C'). v is n×k with the reflectors in
// its columns (unit diagonal implicit); t is k×k upper triangular output.
func Larft[T core.Scalar](n, k int, v []T, ldv int, tau []T, t []T, ldt int) {
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for j := 0; j <= i; j++ {
				t[j+i*ldt] = 0
			}
			continue
		}
		vii := v[i+i*ldv]
		v[i+i*ldv] = core.FromFloat[T](1)
		// t(0:i, i) = −tau(i) · V(i:n, 0:i)ᴴ · V(i:n, i)
		blas.Gemv(ConjTrans, n-i, i, -tau[i], v[i:], ldv, v[i+i*ldv:], 1,
			core.FromFloat[T](0), t[i*ldt:], 1)
		v[i+i*ldv] = vii
		// t(0:i, i) = T(0:i, 0:i) · t(0:i, i)
		blas.Trmv(Upper, NoTrans, NonUnit, i, t, ldt, t[i*ldt:], 1)
		t[i+i*ldt] = tau[i]
	}
}

// Larfb applies a block reflector H or Hᴴ from the left to an m×n matrix C
// (xLARFB with side='L', direct='F', storev='C'). v is m×k, t is the k×k
// factor from Larft; work must have length at least n*k.
func Larfb[T core.Scalar](trans Trans, m, n, k int, v []T, ldv int, t []T, ldt int, c []T, ldc int, work []T) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	one := core.FromFloat[T](1)
	ldw := max(1, n)
	w := work[:ldw*k]
	// W := C1ᴴ (n×k), where C1 = C(0:k, :).
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			w[i+j*ldw] = core.Conj(c[j+i*ldc])
		}
	}
	// W := W · V1 (V1 unit lower triangular k×k).
	blas.Trmm(Right, Lower, NoTrans, Unit, n, k, one, v, ldv, w, ldw)
	if m > k {
		// W += C2ᴴ · V2.
		blas.Gemm(ConjTrans, NoTrans, n, k, m-k, one, c[k:], ldc, v[k:], ldv, one, w, ldw)
	}
	// W := W · Tᴴ (apply H) or W · T (apply Hᴴ).
	tt := ConjTrans
	if trans != NoTrans {
		tt = NoTrans
	}
	blas.Trmm(Right, Upper, tt, NonUnit, n, k, one, t, ldt, w, ldw)
	// C2 −= V2 · Wᴴ.
	if m > k {
		blas.Gemm(NoTrans, ConjTrans, m-k, n, k, -one, v[k:], ldv, w, ldw, one, c[k:], ldc)
	}
	// W := W · V1ᴴ.
	blas.Trmm(Right, Lower, ConjTrans, Unit, n, k, one, v, ldv, w, ldw)
	// C1 −= Wᴴ.
	for j := 0; j < n; j++ {
		for i := 0; i < k; i++ {
			c[i+j*ldc] -= core.Conj(w[j+i*ldw])
		}
	}
}

// geqrfBlocked is the Level-3 QR factorization (xGEQRF): panels are
// factored with the unblocked kernel and the trailing matrix is updated
// with block reflectors.
func geqrfBlocked[T core.Scalar](m, n int, a []T, lda int, tau []T, nb int) {
	mn := min(m, n)
	work := make([]T, max(1, n)*nb)
	tmat := make([]T, nb*nb)
	panelWork := make([]T, max(1, n))
	for j := 0; j < mn; j += nb {
		jb := min(nb, mn-j)
		Geqr2(m-j, jb, a[j+j*lda:], lda, tau[j:j+jb], panelWork)
		if j+jb < n {
			Larft(m-j, jb, a[j+j*lda:], lda, tau[j:j+jb], tmat, nb)
			Larfb(ConjTrans, m-j, n-j-jb, jb, a[j+j*lda:], lda, tmat, nb,
				a[j+(j+jb)*lda:], lda, work)
		}
	}
}
