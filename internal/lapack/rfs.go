package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// rfs is the iterative-refinement engine shared by every xyyRFS routine. It
// refines X (n×nrhs, ldx) for op(A)·X = B and fills in componentwise
// backward errors berr and forward error bounds ferr, following the
// algorithm of xGERFS. The matrix is abstracted through three callbacks:
//
//	mv     computes y = alpha·op(A)·x + beta·y,
//	absmv  computes y += |op(A)|·xa for non-negative xa (componentwise
//	       absolute values of the matrix),
//	solve  overwrites r with op(A)⁻¹·r using the precomputed factorization.
//
// For symmetric and Hermitian coefficient matrices the trans argument is
// always NoTrans.
func rfs[T core.Scalar](trans Trans, n, nrhs int,
	mv func(trans Trans, alpha T, x []T, beta T, y []T),
	absmv func(trans Trans, xa, y []float64),
	solve func(trans Trans, r []T),
	b []T, ldb int, x []T, ldx int, ferr, berr []float64) {

	if n == 0 || nrhs == 0 {
		for j := 0; j < nrhs; j++ {
			ferr[j], berr[j] = 0, 0
		}
		return
	}
	const itmax = 5
	nz := float64(n + 1)
	eps := core.Eps[T]()
	safmin := core.SafeMin[T]()
	safe1 := nz * safmin
	safe2 := safe1 / eps
	transBack := TransT
	if core.IsComplex[T]() {
		transBack = ConjTrans
	}
	r := make([]T, n)
	w := make([]float64, n)
	xa := make([]float64, n)
	one := core.FromFloat[T](1)
	for j := 0; j < nrhs; j++ {
		bj := b[j*ldb:]
		xj := x[j*ldx:]
		lstres := 3.0
		for count := 1; ; count++ {
			// r = b - op(A)·x
			blas.Copy(n, bj, 1, r, 1)
			mv(trans, -one, xj, one, r)
			// w = |b| + |op(A)|·|x| componentwise.
			for i := 0; i < n; i++ {
				w[i] = core.Abs1(bj[i])
				xa[i] = core.Abs1(xj[i])
			}
			absmv(trans, xa, w)
			s := 0.0
			for i := 0; i < n; i++ {
				if w[i] > safe2 {
					s = math.Max(s, core.Abs1(r[i])/w[i])
				} else {
					s = math.Max(s, (core.Abs1(r[i])+safe1)/(w[i]+safe1))
				}
			}
			if math.IsNaN(s) {
				// Non-finite solution or residual (e.g. the true solution
				// overflows float64): Inf − Inf poisoned the residual. The
				// backward error is not merely large, it is unbounded —
				// report +Inf, never NaN, and stop refining.
				s = math.Inf(1)
			}
			berr[j] = s
			if !(berr[j] > eps && 2*berr[j] <= lstres && count <= itmax) {
				break
			}
			solve(trans, r)
			blas.Axpy(n, one, r, 1, xj, 1)
			lstres = berr[j]
		}
		// Forward error: estimate ||inv(op(A))·diag(w)||_∞ where
		// w_i = |r_i| + nz·eps·(|op(A)||x| + |b|)_i.
		for i := 0; i < n; i++ {
			if w[i] > safe2 {
				w[i] = core.Abs1(r[i]) + nz*eps*w[i]
			} else {
				w[i] = core.Abs1(r[i]) + nz*eps*w[i] + safe1
			}
		}
		ferr[j] = Lacn2(n, func(conjTrans bool, v []T) {
			if conjTrans {
				tr := transBack
				if trans != NoTrans {
					tr = NoTrans
				}
				solve(tr, v)
				for i := 0; i < n; i++ {
					v[i] *= core.FromFloat[T](w[i])
				}
			} else {
				for i := 0; i < n; i++ {
					v[i] *= core.FromFloat[T](w[i])
				}
				solve(trans, v)
			}
		})
		lstres = 0
		for i := 0; i < n; i++ {
			lstres = math.Max(lstres, core.Abs1(xj[i]))
		}
		if lstres != 0 {
			ferr[j] /= lstres
		}
		if math.IsNaN(ferr[j]) {
			// Inf/Inf (overflowed solution scaled by an overflowed
			// estimate) — the bound is unbounded, not undefined.
			ferr[j] = math.Inf(1)
		}
	}
}

// absGemv computes y += |op(A)|·xa for a dense matrix, the componentwise
// kernel used by Gerfs.
func absGemv[T core.Scalar](trans Trans, m, n int, a []T, lda int, xa, y []float64) {
	if trans == NoTrans {
		for k := 0; k < n; k++ {
			xk := xa[k]
			if xk == 0 {
				continue
			}
			for i := 0; i < m; i++ {
				y[i] += core.Abs1(a[i+k*lda]) * xk
			}
		}
		return
	}
	for k := 0; k < n; k++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += core.Abs1(a[i+k*lda]) * xa[i]
		}
		y[k] += s
	}
}
