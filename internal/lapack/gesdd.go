package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// svdQRCross reports whether the tall QR-first preprocessing pays off: for
// m ≥ 5n/3 (xGESDD path 1, same crossover as xGESVD's MNTHR) a blocked QR
// plus an n×n SVD plus one GEMM beats bidiagonalizing the full m×n matrix.
func svdQRCross(m, n int) bool {
	return m > n && 3*m >= 5*n
}

// svdDriver is the common shape of the square/tall SVD kernels that
// svdTallQRFirst can delegate to (Gesdd or Gesvd).
type svdDriver[T core.Scalar] func(cfg *core.Config, jobu, jobvt SVDJob, m, n int, a []T, lda int, s []float64, u []T, ldu int, vt []T, ldvt int) int

// svdTallQRFirst implements xGESDD path 1 for m ≥ 5n/3: factor A = Q·R
// with a blocked Geqrf, SVD the n×n R through inner, and recover
// U = Q·U_R with one GEMM. Vᴴ comes out of the inner drive directly. The
// wide mirror (LQ-first) is reached through the callers' conjugate
// transpose path.
func svdTallQRFirst[T core.Scalar](cfg *core.Config, inner svdDriver[T], jobu, jobvt SVDJob, m, n int, a []T, lda int, s []float64, u []T, ldu int, vt []T, ldvt int) int {
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	tau := make([]T, n)
	Geqrf(cfg, m, n, a, lda, tau)
	r := blas.GetScratch[T](n * n)
	defer blas.PutScratch(r)
	Laset('A', n, n, 0, 0, r, n)
	Lacpy('U', n, n, a, lda, r, n)
	jobuR := SVDNone
	var ur []T
	var ldur int
	if jobu != SVDNone {
		jobuR = SVDSome
		ur = blas.GetScratch[T](n * n)
		defer blas.PutScratch(ur)
		ldur = n
	}
	if info := inner(cfg, jobuR, jobvt, n, n, r, n, s, ur, ldur, vt, ldvt); info != 0 {
		return info
	}
	if jobu != SVDNone {
		ucols := n
		if jobu == SVDAll {
			ucols = m
		}
		Lacpy('L', m, n, a, lda, u, ldu)
		Orgqr(cfg, m, ucols, n, u, ldu, tau)
		// First n columns become Q(:, 0:n)·U_R; for jobu 'A' the trailing
		// m−n columns of Q are already the remaining left vectors.
		tmp := blas.GetScratch[T](m * n)
		defer blas.PutScratch(tmp)
		blas.Gemm(cfg, NoTrans, NoTrans, m, n, n, one, u, ldu, ur, n, zero, tmp, m)
		Lacpy('A', m, n, tmp, m, u, ldu)
	}
	return 0
}

// Gesdd computes the singular value decomposition A = U·Σ·Vᴴ by bidiagonal
// divide & conquer (the xGESDD driver). The interface matches Gesvd: s
// receives the min(m,n) singular values in descending order and jobu/jobvt
// select how much of U (m×m or m×min(m,n)) and Vᴴ (n×n or min(m,n)×n) is
// formed. a is destroyed. Returns non-zero if the D&C kernel fails.
//
// The drive differs from Gesvd in where the flops go: the bidiagonal
// singular vectors are accumulated in float64 by Bdsdc and applied to the
// Orgbr bases with one GEMM each, instead of Bdsqr's O(mn²) Level-1
// rotation traffic. Tall matrices with m ≥ 5n/3 take a blocked Geqrf first
// and run the SVD on the n×n R (U = Q·U_R with one more GEMM); wide
// matrices transpose into the tall path at the symmetric n ≥ 5m/3
// crossover. When neither U nor Vᴴ is wanted the values-only Bdsqr
// iteration is cheaper than D&C and is used directly.
func Gesdd[T core.Scalar](cfg *core.Config, jobu, jobvt SVDJob, m, n int, a []T, lda int, s []float64, u []T, ldu int, vt []T, ldvt int) int {
	mn := min(m, n)
	if mn == 0 {
		return 0
	}
	// Scale A into [smlnum, bignum] first (xGESDD's xLASCL step). The D&C
	// secular solve works on squared singular values, so entries anywhere
	// near sqrt(overflow) would take the recursion to Inf even though the
	// true σ are representable; symmetrically, subnormal-range entries lose
	// their low bits when squared. Singular vectors are scale-invariant;
	// the σ are multiplied back on the way out (overflowing to Inf only
	// when the true value does).
	if anrm := Lange(MaxAbs, m, n, a, lda); anrm > 0 && !math.IsInf(anrm, 0) && !math.IsNaN(anrm) {
		eps := core.Eps[T]()
		smlnum := math.Sqrt(core.SafeMin[T]()) / eps
		bignum := 1 / smlnum
		var target float64
		if anrm < smlnum {
			target = smlnum
		} else if anrm > bignum {
			target = bignum
		}
		if target != 0 {
			Lascl(MatGeneral, anrm, target, m, n, a, lda)
			info := gesddScaled(cfg, jobu, jobvt, m, n, a, lda, s, u, ldu, vt, ldvt)
			if info == 0 {
				scl := anrm / target
				for i := 0; i < mn; i++ {
					s[i] *= scl
				}
			}
			return info
		}
	}
	return gesddScaled(cfg, jobu, jobvt, m, n, a, lda, s, u, ldu, vt, ldvt)
}

// gesddScaled is the Gesdd drive proper, entered once the input is known to
// sit in the safely-squarable range.
func gesddScaled[T core.Scalar](cfg *core.Config, jobu, jobvt SVDJob, m, n int, a []T, lda int, s []float64, u []T, ldu int, vt []T, ldvt int) int {
	mn := min(m, n)
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	if m < n {
		// Wide case: Aᴴ = V·Σ·Uᴴ, so run the tall path on the blocked
		// conjugate transpose and swap the roles of U and Vᴴ.
		ah := blas.GetScratch[T](n * m)
		defer blas.PutScratch(ah)
		blas.ConjTransposeTo(m, n, a, lda, ah, n)
		var up, vtp []T
		var ldup, ldvtp int
		if jobvt != SVDNone {
			cols := mn
			if jobvt == SVDAll {
				cols = n
			}
			up = blas.GetScratch[T](n * cols)
			defer blas.PutScratch(up)
			ldup = n
		}
		if jobu != SVDNone {
			rows := mn
			if jobu == SVDAll {
				rows = m
			}
			vtp = blas.GetScratch[T](rows * m)
			defer blas.PutScratch(vtp)
			ldvtp = rows
		}
		info := Gesdd(cfg, jobvt, jobu, n, m, ah, n, s, up, ldup, vtp, ldvtp)
		if jobu != SVDNone {
			cols := mn
			if jobu == SVDAll {
				cols = m
			}
			// U of A = (V'ᴴ)ᴴ.
			blas.ConjTransposeTo(cols, m, vtp, ldvtp, u, ldu)
		}
		if jobvt != SVDNone {
			rows := mn
			if jobvt == SVDAll {
				rows = n
			}
			// Vᴴ of A = U'ᴴ.
			blas.ConjTransposeTo(n, rows, up, ldup, vt, ldvt)
		}
		return info
	}
	if jobu == SVDNone && jobvt == SVDNone {
		// Values only: QR iteration without vector accumulation does less
		// work than the D&C merge tree.
		return Gesvd(cfg, jobu, jobvt, m, n, a, lda, s, u, ldu, vt, ldvt)
	}
	if svdQRCross(m, n) {
		// Path 1: A = Q·R, SVD the n×n R, then U = Q·U_R with one GEMM.
		return svdTallQRFirst(cfg, Gesdd[T], jobu, jobvt, m, n, a, lda, s, u, ldu, vt, ldvt)
	}
	// Square / moderately tall: bidiagonalize, run the f64 D&C, and apply
	// the accumulated singular vector matrices to the Orgbr bases with one
	// GEMM on each side.
	d := make([]float64, n)
	e := make([]float64, max(0, n-1))
	tauq := make([]T, n)
	taup := make([]T, n)
	Gebrd(cfg, m, n, a, lda, d, e, tauq, taup)
	u0 := blas.GetScratch[float64](n * n)
	defer blas.PutScratch(u0)
	vt0 := blas.GetScratch[float64](n * n)
	defer blas.PutScratch(vt0)
	if info := Bdsdc(cfg, n, d, e, u0, n, vt0, n); info != 0 {
		return info
	}
	copy(s[:n], d[:n])
	if jobu != SVDNone {
		ucols := n
		if jobu == SVDAll {
			ucols = m
		}
		Lacpy('L', m, n, a, lda, u, ldu)
		Orgbr(cfg, 'Q', m, ucols, n, u, ldu, tauq)
		u0t := blas.GetScratch[T](n * n)
		defer blas.PutScratch(u0t)
		blas.ConvertF64(n, n, u0, n, u0t, n)
		tmp := blas.GetScratch[T](m * n)
		defer blas.PutScratch(tmp)
		blas.Gemm(cfg, NoTrans, NoTrans, m, n, n, one, u, ldu, u0t, n, zero, tmp, m)
		Lacpy('A', m, n, tmp, m, u, ldu)
	}
	if jobvt != SVDNone {
		Lacpy('U', n, n, a, lda, vt, ldvt)
		Orgbr(cfg, 'P', n, n, n, vt, ldvt, taup)
		vt0t := blas.GetScratch[T](n * n)
		defer blas.PutScratch(vt0t)
		blas.ConvertF64(n, n, vt0, n, vt0t, n)
		tmp := blas.GetScratch[T](n * n)
		defer blas.PutScratch(tmp)
		blas.Gemm(cfg, NoTrans, NoTrans, n, n, n, one, vt0t, n, vt, ldvt, zero, tmp, n)
		Lacpy('A', n, n, tmp, n, vt, ldvt)
	}
	return 0
}

// Gelsd computes the minimum-norm solution to a possibly rank-deficient
// least squares problem min ‖b − A·x‖₂ using the divide-and-conquer SVD
// (the xGELSD driver). The interface matches Gelss: b is max(m, n)×nrhs
// and is overwritten with the solution, s receives the singular values,
// and rank counts σᵢ > rcond·σ₀.
//
// Unlike Gelss's per-column Gemv sweeps, the pseudo-inverse application
// x = V·Σ⁺·Uᴴ·b runs as two multi-RHS GEMM calls, so the whole drive —
// bidiagonal D&C included — stays on the Level-3 engine.
func Gelsd[T core.Scalar](cfg *core.Config, m, n, nrhs int, a []T, lda int, b []T, ldb int, s []float64, rcond float64) (rank, info int) {
	mn := min(m, n)
	if mn == 0 {
		return 0, 0
	}
	if rcond < 0 {
		rcond = core.Eps[T]()
	}
	u := blas.GetScratch[T](m * mn)
	defer blas.PutScratch(u)
	vt := blas.GetScratch[T](mn * n)
	defer blas.PutScratch(vt)
	info = Gesdd(cfg, SVDSome, SVDSome, m, n, a, lda, s, u, m, vt, mn)
	if info != 0 {
		return 0, info
	}
	for i := 0; i < mn; i++ {
		if s[i] > rcond*s[0] {
			rank++
		}
	}
	if rank == 0 {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				b[i+j*ldb] = 0
			}
		}
		return 0, 0
	}
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	// w = Uᴴ·B, row-scaled by Σ⁺.
	w := blas.GetScratch[T](mn * nrhs)
	defer blas.PutScratch(w)
	blas.Gemm(cfg, ConjTrans, NoTrans, mn, nrhs, m, one, u, m, b, ldb, zero, w, mn)
	for i := 0; i < rank; i++ {
		inv := core.FromFloat[T](1 / s[i])
		for j := 0; j < nrhs; j++ {
			w[i+j*mn] *= inv
		}
	}
	// x = Vᴴᵀ·w over the leading rank rows of Vᴴ.
	x := blas.GetScratch[T](n * nrhs)
	defer blas.PutScratch(x)
	blas.Gemm(cfg, ConjTrans, NoTrans, n, nrhs, rank, one, vt, mn, w, mn, zero, x, n)
	for j := 0; j < nrhs; j++ {
		copy(b[j*ldb:j*ldb+n], x[j*n:j*n+n])
	}
	return rank, 0
}
