package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// Sytd2 reduces a symmetric (Hermitian, for complex element types) matrix
// to real symmetric tridiagonal form by a unitary similarity
// transformation Qᴴ·A·Q = T (xSYTD2/xHETD2). d and e receive the diagonal
// and off-diagonal of T; tau the reflector scalars. The reflectors are
// stored in the triangle of a opposite the diagonal as in LAPACK.
func Sytd2[T core.Scalar](uplo Uplo, n int, a []T, lda int, d, e []float64, tau []T) {
	if n == 0 {
		return
	}
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	half := core.FromFloat[T](0.5)
	w := make([]T, n)
	if uplo == Upper {
		a[n-1+(n-1)*lda] = core.FromFloat[T](core.Re(a[n-1+(n-1)*lda]))
		for i := n - 2; i >= 0; i-- {
			// Generate H(i) to annihilate A(0:i-1, i+1).
			alpha := a[i+(i+1)*lda]
			taui := Larfg(i+1, &alpha, a[(i+1)*lda:], 1)
			e[i] = core.Re(alpha)
			if taui != 0 {
				a[i+(i+1)*lda] = one
				// w = τ·A(0:i, 0:i)·v
				blas.Hemv(Upper, i+1, taui, a, lda, a[(i+1)*lda:], 1, zero, w, 1)
				// w -= ½·τ·(wᴴ·v)·v
				alpha = -half * taui * blas.Dotc(i+1, w, 1, a[(i+1)*lda:], 1)
				blas.Axpy(i+1, alpha, a[(i+1)*lda:], 1, w, 1)
				// A -= v·wᴴ + w·vᴴ
				blas.Her2(Upper, i+1, -one, a[(i+1)*lda:], 1, w, 1, a, lda)
			} else {
				a[i+i*lda] = core.FromFloat[T](core.Re(a[i+i*lda]))
			}
			a[i+(i+1)*lda] = core.FromFloat[T](e[i])
			d[i+1] = core.Re(a[i+1+(i+1)*lda])
			tau[i] = taui
		}
		d[0] = core.Re(a[0])
		return
	}
	a[0] = core.FromFloat[T](core.Re(a[0]))
	for i := 0; i < n-1; i++ {
		alpha := a[i+1+i*lda]
		taui := Larfg(n-i-1, &alpha, a[min(i+2, n-1)+i*lda:], 1)
		e[i] = core.Re(alpha)
		if taui != 0 {
			a[i+1+i*lda] = one
			blas.Hemv(Lower, n-i-1, taui, a[i+1+(i+1)*lda:], lda, a[i+1+i*lda:], 1, zero, w, 1)
			alpha = -half * taui * blas.Dotc(n-i-1, w, 1, a[i+1+i*lda:], 1)
			blas.Axpy(n-i-1, alpha, a[i+1+i*lda:], 1, w, 1)
			blas.Her2(Lower, n-i-1, -one, a[i+1+i*lda:], 1, w, 1, a[i+1+(i+1)*lda:], lda)
		} else {
			a[i+1+(i+1)*lda] = core.FromFloat[T](core.Re(a[i+1+(i+1)*lda]))
		}
		a[i+1+i*lda] = core.FromFloat[T](e[i])
		d[i] = core.Re(a[i+i*lda])
		tau[i] = taui
	}
	d[n-1] = core.Re(a[n-1+(n-1)*lda])
}

// Latrd reduces nb rows and columns of a symmetric/Hermitian n×n matrix to
// tridiagonal form by a unitary similarity transformation and returns the
// matrix W needed to update the unreduced part (xLATRD/the Hermitian
// variant). With uplo == Upper the last nb columns are reduced (W columns
// iw = i-(n-nb) correspond to matrix columns i); with Lower the first nb.
// The trailing update A := A − V·Wᴴ − W·Vᴴ is NOT applied here — the
// blocked Sytrd issues it as one rank-2k update through the Level-3 engine.
// e, tau index as in Sytd2; w is n×nb with leading dimension ldw.
func Latrd[T core.Scalar](cfg *core.Config, uplo Uplo, n, nb int, a []T, lda int, e []float64, tau []T, w []T, ldw int) {
	if n <= 0 {
		return
	}
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	half := core.FromFloat[T](0.5)
	if uplo == Upper {
		// Reduce the last nb columns of the leading n×n block.
		for c := n - 1; c >= n-nb && c >= 0; c-- {
			iw := c - (n - nb)
			if c < n-1 {
				// A(0:c+1, c) -= A(0:c+1, c+1:n)·conj(W(c, iw+1:nb))
				//              + W(0:c+1, iw+1:nb)·conj(A(c, c+1:n)).
				a[c+c*lda] = core.FromFloat[T](core.Re(a[c+c*lda]))
				lacgv(n-1-c, w[c+(iw+1)*ldw:], ldw)
				blas.Gemv(cfg, NoTrans, c+1, n-1-c, -one, a[(c+1)*lda:], lda,
					w[c+(iw+1)*ldw:], ldw, one, a[c*lda:], 1)
				lacgv(n-1-c, w[c+(iw+1)*ldw:], ldw)
				lacgv(n-1-c, a[c+(c+1)*lda:], lda)
				blas.Gemv(cfg, NoTrans, c+1, n-1-c, -one, w[(iw+1)*ldw:], ldw,
					a[c+(c+1)*lda:], lda, one, a[c*lda:], 1)
				lacgv(n-1-c, a[c+(c+1)*lda:], lda)
				a[c+c*lda] = core.FromFloat[T](core.Re(a[c+c*lda]))
			}
			if c > 0 {
				// Generate H(c-1) to annihilate A(0:c-1, c).
				alpha := a[c-1+c*lda]
				tau[c-1] = Larfg(c, &alpha, a[c*lda:], 1)
				e[c-1] = core.Re(alpha)
				a[c-1+c*lda] = one
				// W(0:c, iw) = τ·(A·v − V·(Wᴴv) − W·(Vᴴv) − ½τ(wᴴv)v).
				blas.Hemv(Upper, c, one, a, lda, a[c*lda:], 1, zero, w[iw*ldw:], 1)
				if c < n-1 {
					blas.Gemv(cfg, ConjTrans, c, n-1-c, one, w[(iw+1)*ldw:], ldw,
						a[c*lda:], 1, zero, w[c+1+iw*ldw:], 1)
					blas.Gemv(cfg, NoTrans, c, n-1-c, -one, a[(c+1)*lda:], lda,
						w[c+1+iw*ldw:], 1, one, w[iw*ldw:], 1)
					blas.Gemv(cfg, ConjTrans, c, n-1-c, one, a[(c+1)*lda:], lda,
						a[c*lda:], 1, zero, w[c+1+iw*ldw:], 1)
					blas.Gemv(cfg, NoTrans, c, n-1-c, -one, w[(iw+1)*ldw:], ldw,
						w[c+1+iw*ldw:], 1, one, w[iw*ldw:], 1)
				}
				blas.Scal(c, tau[c-1], w[iw*ldw:], 1)
				alpha = -half * tau[c-1] * blas.Dotc(c, w[iw*ldw:], 1, a[c*lda:], 1)
				blas.Axpy(c, alpha, a[c*lda:], 1, w[iw*ldw:], 1)
			}
		}
		return
	}
	// Lower: reduce the first nb columns.
	for i := 0; i < nb; i++ {
		// A(i:n, i) -= A(i:n, 0:i)·conj(W(i, 0:i)) + W(i:n, 0:i)·conj(A(i, 0:i)).
		a[i+i*lda] = core.FromFloat[T](core.Re(a[i+i*lda]))
		lacgv(i, w[i:], ldw)
		blas.Gemv(cfg, NoTrans, n-i, i, -one, a[i:], lda, w[i:], ldw, one, a[i+i*lda:], 1)
		lacgv(i, w[i:], ldw)
		lacgv(i, a[i:], lda)
		blas.Gemv(cfg, NoTrans, n-i, i, -one, w[i:], ldw, a[i:], lda, one, a[i+i*lda:], 1)
		lacgv(i, a[i:], lda)
		a[i+i*lda] = core.FromFloat[T](core.Re(a[i+i*lda]))
		if i < n-1 {
			// Generate H(i) to annihilate A(i+2:n, i).
			alpha := a[i+1+i*lda]
			tau[i] = Larfg(n-i-1, &alpha, a[min(i+2, n-1)+i*lda:], 1)
			e[i] = core.Re(alpha)
			a[i+1+i*lda] = one
			// W(i+1:n, i), with W(0:i, i) as the temporary for Wᴴv and Vᴴv.
			blas.Hemv(Lower, n-i-1, one, a[i+1+(i+1)*lda:], lda, a[i+1+i*lda:], 1,
				zero, w[i+1+i*ldw:], 1)
			if i > 0 {
				blas.Gemv(cfg, ConjTrans, n-i-1, i, one, w[i+1:], ldw, a[i+1+i*lda:], 1,
					zero, w[i*ldw:], 1)
				blas.Gemv(cfg, NoTrans, n-i-1, i, -one, a[i+1:], lda, w[i*ldw:], 1,
					one, w[i+1+i*ldw:], 1)
				blas.Gemv(cfg, ConjTrans, n-i-1, i, one, a[i+1:], lda, a[i+1+i*lda:], 1,
					zero, w[i*ldw:], 1)
				blas.Gemv(cfg, NoTrans, n-i-1, i, -one, w[i+1:], ldw, w[i*ldw:], 1,
					one, w[i+1+i*ldw:], 1)
			}
			blas.Scal(n-i-1, tau[i], w[i+1+i*ldw:], 1)
			alpha = -half * tau[i] * blas.Dotc(n-i-1, w[i+1+i*ldw:], 1, a[i+1+i*lda:], 1)
			blas.Axpy(n-i-1, alpha, a[i+1+i*lda:], 1, w[i+1+i*ldw:], 1)
		}
	}
}

// Sytrd reduces a symmetric/Hermitian matrix to tridiagonal form
// (xSYTRD/xHETRD). Above the Ilaenv crossover the reduction is blocked:
// Latrd reduces an nb-column panel accumulating the update matrix W, and
// the unreduced part takes a single Hermitian rank-2k update
// A := A − V·Wᴴ − W·Vᴴ through the packed Level-3 engine, so roughly half
// the flops run at GEMM speed. Below the crossover (or with nb == 1) the
// unblocked Sytd2 is used directly. Both paths produce the LAPACK storage
// convention, and the floating-point schedule is independent of the worker
// count (the Level-3 engine is deterministic), so threaded runs are
// bit-identical to serial ones.
func Sytrd[T core.Scalar](cfg *core.Config, uplo Uplo, n int, a []T, lda int, d, e []float64, tau []T) {
	nb := Ilaenv(cfg, 1, "SYTRD", n, -1, -1, -1)
	nx := max(nb, Ilaenv(cfg, 3, "SYTRD", n, -1, -1, -1))
	if n <= nx || nb <= 1 {
		Sytd2(uplo, n, a, lda, d, e, tau)
		return
	}
	one := core.FromFloat[T](1)
	ldw := n
	w := blas.GetScratch[T](ldw * nb)
	defer blas.PutScratch(w)
	if uplo == Upper {
		// Peel nb-column panels off the high end; columns 0:kk stay for the
		// unblocked finish (kk > 0 because n > nx >= nb).
		kk := n - ((n-nx+nb-1)/nb)*nb
		for i1 := n - nb; i1 >= kk; i1 -= nb {
			cfg.Checkpoint() // once per panel
			Latrd(cfg, Upper, i1+nb, nb, a, lda, e, tau, w, ldw)
			blas.Her2k(cfg, Upper, NoTrans, i1, nb, -one, a[i1*lda:], lda, w, ldw, 1, a, lda)
			// Restore the superdiagonal overwritten by the reflectors and
			// record the diagonal of the reduced columns.
			for j := i1; j < i1+nb; j++ {
				a[j-1+j*lda] = core.FromFloat[T](e[j-1])
				d[j] = core.Re(a[j+j*lda])
			}
		}
		Sytd2(Upper, kk, a, lda, d, e, tau)
		return
	}
	var i1 int
	for i1 = 0; i1 < n-nx; i1 += nb {
		cfg.Checkpoint() // once per panel
		Latrd(cfg, Lower, n-i1, nb, a[i1+i1*lda:], lda, e[i1:], tau[i1:], w, ldw)
		blas.Her2k(cfg, Lower, NoTrans, n-i1-nb, nb, -one, a[i1+nb+i1*lda:], lda,
			w[nb:], ldw, 1, a[i1+nb+(i1+nb)*lda:], lda)
		for j := i1; j < i1+nb; j++ {
			a[j+1+j*lda] = core.FromFloat[T](e[j])
			d[j] = core.Re(a[j+j*lda])
		}
	}
	Sytd2(Lower, n-i1, a[i1+i1*lda:], lda, d[i1:], e[i1:], tau[i1:])
}

// Hetrd is the Hermitian driver name for Sytrd (xHETRD); the generic Sytrd
// already performs the Hermitian reduction for complex element types.
func Hetrd[T core.Scalar](cfg *core.Config, uplo Uplo, n int, a []T, lda int, d, e []float64, tau []T) {
	Sytrd(cfg, uplo, n, a, lda, d, e, tau)
}

// Org2l generates the last n columns of the unitary matrix Q defined as a
// product of k reflectors stored column-wise QL-style (xORG2L/xUNG2L). a
// is m×n with n <= m and the reflectors in its last k columns.
func Org2l[T core.Scalar](cfg *core.Config, m, n, k int, a []T, lda int, tau []T) {
	if n <= 0 {
		return
	}
	work := make([]T, n)
	// First n-k columns are unit vectors ending at row m-n+j.
	for j := 0; j < n-k; j++ {
		for i := 0; i < m; i++ {
			a[i+j*lda] = 0
		}
		a[m-n+j+j*lda] = core.FromFloat[T](1)
	}
	for i := 0; i < k; i++ {
		ii := n - k + i
		// Apply H(i) to A(0:m-n+ii+1, 0:ii) from the left.
		a[m-n+ii+ii*lda] = core.FromFloat[T](1)
		Larf(cfg, Left, m-n+ii+1, ii, a[ii*lda:], 1, tau[i], a, lda, work)
		blas.Scal(m-n+ii, -tau[i], a[ii*lda:], 1)
		a[m-n+ii+ii*lda] = core.FromFloat[T](1) - tau[i]
		for l := m - n + ii + 1; l < m; l++ {
			a[l+ii*lda] = 0
		}
	}
}

// Orgtr generates the unitary matrix Q from the reduction computed by
// Sytrd (xORGTR/xUNGTR), overwriting a with the n×n Q.
func Orgtr[T core.Scalar](cfg *core.Config, uplo Uplo, n int, a []T, lda int, tau []T) {
	if n == 0 {
		return
	}
	if uplo == Upper {
		// Q = H(n-2)…H(0) with reflector i stored in A(0:i, i+1): shift the
		// columns left and generate QL-style.
		for j := 0; j < n-1; j++ {
			for i := 0; i < j; i++ {
				a[i+j*lda] = a[i+(j+1)*lda]
			}
			a[n-1+j*lda] = 0
		}
		for i := 0; i < n-1; i++ {
			a[i+(n-1)*lda] = 0
		}
		a[n-1+(n-1)*lda] = core.FromFloat[T](1)
		Org2l(cfg, n-1, n-1, n-1, a, lda, tau)
		return
	}
	// Lower: Q = H(0)…H(n-2) with reflector i in A(i+2:n, i): shift right.
	for j := n - 1; j >= 1; j-- {
		a[j*lda] = 0
		for i := j + 1; i < n; i++ {
			a[i+j*lda] = a[i+(j-1)*lda]
		}
	}
	a[0] = core.FromFloat[T](1)
	for i := 1; i < n; i++ {
		a[i] = 0
	}
	if n > 1 {
		Org2r(cfg, n-1, n-1, n-1, a[1+lda:], lda, tau)
	}
}

// Ormtr multiplies C by the unitary Q from Sytrd or its conjugate
// transpose (xORMTR/xUNMTR). Only side == Left is needed by this library's
// drivers and implemented.
func Ormtr[T core.Scalar](cfg *core.Config, uplo Uplo, trans Trans, m, n int, a []T, lda int, tau []T, c []T, ldc int) {
	if m <= 1 {
		return
	}
	if uplo == Lower {
		// Q = H(0)…H(m-2), reflectors stored below the first subdiagonal:
		// exactly the QR layout on the shifted submatrix.
		Ormqr(cfg, Left, trans, m-1, n, m-1, a[1:], lda, tau, c[1:], ldc)
		return
	}
	// Upper: QL-style reflectors in A(0:i, i+1). Apply each explicitly.
	work := make([]T, n)
	k := m - 1
	notran := trans == NoTrans
	// Q = H(k-1)…H(0) (QL product): Q·C applies H(0) first, so the loop
	// ascends for NoTrans and descends for the conjugate transpose.
	start, end, step := k-1, -1, -1
	if notran {
		start, end, step = 0, k, 1
	}
	v := make([]T, m)
	for i := start; i != end; i += step {
		taui := tau[i]
		if !notran {
			taui = core.Conj(taui)
		}
		// Reflector i: stored tail in A(0:i-1, i+1), implicit 1 at row i,
		// acting on rows 0..i.
		for j := 0; j < i; j++ {
			v[j] = a[j+(i+1)*lda]
		}
		v[i] = core.FromFloat[T](1)
		Larf(cfg, Left, i+1, n, v, 1, taui, c, ldc, work)
	}
}

// Syev computes all eigenvalues and, optionally, eigenvectors of a
// symmetric (Hermitian for complex element types) matrix (the xSYEV/xHEEV
// driver). If jobz is true, a is overwritten with the orthonormal
// eigenvectors; w receives the eigenvalues in ascending order. Returns the
// Steqr failure count (0 on success).
func Syev[T core.Scalar](cfg *core.Config, jobz bool, uplo Uplo, n int, a []T, lda int, w []float64) int {
	if n == 0 {
		return 0
	}
	// Scale the matrix into the tridiagonal iteration's safe range when its
	// norm is extreme (the xSYEV anrm guard): squares of the entries appear
	// in the QL/QR shifts, so entries beyond sqrt(overflow) — or below
	// sqrt(safmin), where the shifts denormalize — are pre-scaled by Lascl
	// and the eigenvalues scaled back afterwards.
	smlnum := core.SafeMin[T]() / core.Eps[T]()
	rmin, rmax := math.Sqrt(smlnum), math.Sqrt(1/smlnum)
	anrm := Lansy(MaxAbs, uplo, n, a, lda)
	sigma := 1.0
	if anrm > 0 && anrm < rmin {
		sigma = rmin / anrm
	} else if anrm > rmax {
		sigma = rmax / anrm
	}
	if sigma != 1 {
		mt := MatUpper
		if uplo == Lower {
			mt = MatLower
		}
		Lascl(mt, 1, sigma, n, n, a, lda)
	}
	e := make([]float64, max(0, n-1))
	tau := make([]T, max(0, n-1))
	Sytrd(cfg, uplo, n, a, lda, w, e, tau)
	info := 0
	if !jobz {
		info = Sterf(cfg, n, w, e)
	} else {
		Orgtr(cfg, uplo, n, a, lda, tau)
		info = Steqr(cfg, n, w, e, a, lda)
	}
	if sigma != 1 {
		for i := range w {
			w[i] /= sigma
		}
	}
	return info
}

// Heev is the Hermitian driver name for Syev (xHEEV); for complex element
// types Syev already performs the Hermitian reduction.
func Heev[T core.Scalar](cfg *core.Config, jobz bool, uplo Uplo, n int, a []T, lda int, w []float64) int {
	return Syev(cfg, jobz, uplo, n, a, lda, w)
}

// Stev computes all eigenvalues and, optionally, eigenvectors of a real
// symmetric tridiagonal matrix (the xSTEV driver). If z is non-nil it is
// overwritten with the eigenvectors (ldz stride).
func Stev[T core.Scalar](cfg *core.Config, n int, d, e []float64, z []T, ldz int) int {
	if n == 0 {
		return 0
	}
	if z == nil {
		return Sterf(cfg, n, d, e)
	}
	Laset('A', n, n, core.FromFloat[T](0), core.FromFloat[T](1), z, ldz)
	return Steqr(cfg, n, d, e, z, ldz)
}
