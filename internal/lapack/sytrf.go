package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// bkAlpha is the Bunch–Kaufman pivot threshold (1+sqrt(17))/8.
var bkAlpha = (1 + math.Sqrt(17)) / 8

// Sytf2 computes the Bunch–Kaufman factorization A = U·D·Uᵀ or A = L·D·Lᵀ
// of a symmetric matrix (xSYTF2; for complex element types this is the
// complex-symmetric factorization, not the Hermitian one — see Hetf2).
//
// Pivots are encoded in ipiv as in LAPACK, translated to 0-based indices:
// ipiv[k] >= 0 means a 1×1 pivot with rows/columns k and ipiv[k]
// interchanged; ipiv[k] = ipiv[k-1] = -(p+1) < 0 (Upper; k and k+1 for
// Lower) marks a 2×2 pivot block with row p interchanged.
// Returns k+1 (1-based) if D(k,k) is exactly singular.
func Sytf2[T core.Scalar](uplo Uplo, n int, a []T, lda int, ipiv []int) int {
	info := 0
	at := func(i, j int) T { return a[i+j*lda] }
	set := func(i, j int, v T) { a[i+j*lda] = v }
	one := core.FromFloat[T](1)
	if uplo == Upper {
		for k := n - 1; k >= 0; {
			kstep := 1
			kp := k
			absakk := core.Abs1(at(k, k))
			imax, colmax := 0, 0.0
			if k > 0 {
				imax = blas.Iamax(k, a[k*lda:], 1)
				colmax = core.Abs1(at(imax, k))
			}
			if math.Max(absakk, colmax) == 0 {
				if info == 0 {
					info = k + 1
				}
			} else {
				if absakk >= bkAlpha*colmax {
					kp = k
				} else {
					rowmax := 0.0
					for j := imax + 1; j <= k; j++ {
						rowmax = math.Max(rowmax, core.Abs1(at(imax, j)))
					}
					if imax > 0 {
						jmax := blas.Iamax(imax, a[imax*lda:], 1)
						rowmax = math.Max(rowmax, core.Abs1(at(jmax, imax)))
					}
					if absakk >= bkAlpha*colmax*(colmax/rowmax) {
						kp = k
					} else if core.Abs1(at(imax, imax)) >= bkAlpha*rowmax {
						kp = imax
					} else {
						kp = imax
						kstep = 2
					}
				}
				kk := k - kstep + 1
				if kp != kk {
					blas.Swap(kp, a[kk*lda:], 1, a[kp*lda:], 1)
					blas.Swap(kk-kp-1, a[kp+1+kk*lda:], 1, a[kp+(kp+1)*lda:], lda)
					t := at(kk, kk)
					set(kk, kk, at(kp, kp))
					set(kp, kp, t)
					if kstep == 2 {
						t = at(k-1, k)
						set(k-1, k, at(kp, k))
						set(kp, k, t)
					}
				}
				if kstep == 1 {
					r1 := core.Div(one, at(k, k))
					blas.Syr(Upper, k, -r1, a[k*lda:], 1, a, lda)
					blas.Scal(k, r1, a[k*lda:], 1)
				} else if k > 1 {
					d12 := at(k-1, k)
					d22 := core.Div(at(k-1, k-1), d12)
					d11 := core.Div(at(k, k), d12)
					t := core.Div(one, d11*d22-one)
					d12 = core.Div(t, d12)
					for j := k - 2; j >= 0; j-- {
						wkm1 := d12 * (d11*at(j, k-1) - at(j, k))
						wk := d12 * (d22*at(j, k) - at(j, k-1))
						for i := j; i >= 0; i-- {
							set(i, j, at(i, j)-at(i, k)*wk-at(i, k-1)*wkm1)
						}
						set(j, k, wk)
						set(j, k-1, wkm1)
					}
				}
			}
			if kstep == 1 {
				ipiv[k] = kp
			} else {
				ipiv[k] = -(kp + 1)
				ipiv[k-1] = -(kp + 1)
			}
			k -= kstep
		}
		return info
	}
	// Lower triangle.
	for k := 0; k < n; {
		kstep := 1
		kp := k
		absakk := core.Abs1(at(k, k))
		imax, colmax := 0, 0.0
		if k < n-1 {
			imax = k + 1 + blas.Iamax(n-k-1, a[k+1+k*lda:], 1)
			colmax = core.Abs1(at(imax, k))
		}
		if math.Max(absakk, colmax) == 0 {
			if info == 0 {
				info = k + 1
			}
		} else {
			if absakk >= bkAlpha*colmax {
				kp = k
			} else {
				rowmax := 0.0
				for j := k; j < imax; j++ {
					rowmax = math.Max(rowmax, core.Abs1(at(imax, j)))
				}
				if imax < n-1 {
					jmax := imax + 1 + blas.Iamax(n-imax-1, a[imax+1+imax*lda:], 1)
					rowmax = math.Max(rowmax, core.Abs1(at(jmax, imax)))
				}
				if absakk >= bkAlpha*colmax*(colmax/rowmax) {
					kp = k
				} else if core.Abs1(at(imax, imax)) >= bkAlpha*rowmax {
					kp = imax
				} else {
					kp = imax
					kstep = 2
				}
			}
			kk := k + kstep - 1
			if kp != kk {
				if kp < n-1 {
					blas.Swap(n-kp-1, a[kp+1+kk*lda:], 1, a[kp+1+kp*lda:], 1)
				}
				blas.Swap(kp-kk-1, a[kk+1+kk*lda:], 1, a[kp+(kk+1)*lda:], lda)
				t := at(kk, kk)
				set(kk, kk, at(kp, kp))
				set(kp, kp, t)
				if kstep == 2 {
					t = at(k+1, k)
					set(k+1, k, at(kp, k))
					set(kp, k, t)
				}
			}
			if kstep == 1 {
				if k < n-1 {
					r1 := core.Div(one, at(k, k))
					blas.Syr(Lower, n-k-1, -r1, a[k+1+k*lda:], 1, a[k+1+(k+1)*lda:], lda)
					blas.Scal(n-k-1, r1, a[k+1+k*lda:], 1)
				}
			} else if k < n-2 {
				d21 := at(k+1, k)
				d11 := core.Div(at(k+1, k+1), d21)
				d22 := core.Div(at(k, k), d21)
				t := core.Div(one, d11*d22-one)
				d21 = core.Div(t, d21)
				for j := k + 2; j < n; j++ {
					wk := d21 * (d11*at(j, k) - at(j, k+1))
					wkp1 := d21 * (d22*at(j, k+1) - at(j, k))
					for i := j; i < n; i++ {
						set(i, j, at(i, j)-at(i, k)*wk-at(i, k+1)*wkp1)
					}
					set(j, k, wk)
					set(j, k+1, wkp1)
				}
			}
		}
		if kstep == 1 {
			ipiv[k] = kp
		} else {
			ipiv[k] = -(kp + 1)
			ipiv[k+1] = -(kp + 1)
		}
		k += kstep
	}
	return info
}

// lasyf factors the last (Upper) or first (Lower) panel of a symmetric
// matrix with the Bunch–Kaufman pivoting strategy and applies the panel's
// transformations to the rest of the matrix with Level-3 updates (xLASYF).
// w is an n×nb workspace holding the updated panel columns (the columns of
// U·D or L·D); kb is the number of columns actually factored — possibly
// nb-1, and one less than requested when the last pivot turned out 2×2.
// Pivots in ipiv and the info return follow Sytf2.
func lasyf[T core.Scalar](cfg *core.Config, uplo Uplo, n, nb int, a []T, lda int, ipiv []int, w []T, ldw int) (kb, info int) {
	one := core.FromFloat[T](1)
	if uplo == Upper {
		// Factor columns n-1 down to at most n-nb+1, storing updated
		// columns in the trailing columns of w: A column k lives in w
		// column kw = nb-n+k.
		k := n - 1
		for !((k <= n-nb && nb < n) || k < 0) {
			kw := nb - n + k
			// Copy column k and apply the updates from the columns already
			// factored in this panel.
			blas.Copy(k+1, a[k*lda:], 1, w[kw*ldw:], 1)
			if k < n-1 {
				blas.Gemv(cfg, NoTrans, k+1, n-1-k, -one, a[(k+1)*lda:], lda,
					w[k+(kw+1)*ldw:], ldw, one, w[kw*ldw:], 1)
			}
			kstep := 1
			absakk := core.Abs1(w[k+kw*ldw])
			imax, colmax := 0, 0.0
			if k > 0 {
				imax = blas.Iamax(k, w[kw*ldw:], 1)
				colmax = core.Abs1(w[imax+kw*ldw])
			}
			kp := k
			if math.Max(absakk, colmax) == 0 {
				if info == 0 {
					info = k + 1
				}
				blas.Copy(k+1, w[kw*ldw:], 1, a[k*lda:], 1)
			} else {
				if absakk < bkAlpha*colmax {
					// Build the updated column imax in w column kw-1 to run
					// the rook-style comparison against its row maximum.
					blas.Copy(imax+1, a[imax*lda:], 1, w[(kw-1)*ldw:], 1)
					for j := imax + 1; j <= k; j++ {
						w[j+(kw-1)*ldw] = a[imax+j*lda]
					}
					if k < n-1 {
						blas.Gemv(cfg, NoTrans, k+1, n-1-k, -one, a[(k+1)*lda:], lda,
							w[imax+(kw+1)*ldw:], ldw, one, w[(kw-1)*ldw:], 1)
					}
					jmax := imax + 1 + blas.Iamax(k-imax, w[imax+1+(kw-1)*ldw:], 1)
					rowmax := core.Abs1(w[jmax+(kw-1)*ldw])
					if imax > 0 {
						jmax = blas.Iamax(imax, w[(kw-1)*ldw:], 1)
						rowmax = math.Max(rowmax, core.Abs1(w[jmax+(kw-1)*ldw]))
					}
					switch {
					case absakk >= bkAlpha*colmax*(colmax/rowmax):
						// kp = k: 1×1 pivot, no interchange.
					case core.Abs1(w[imax+(kw-1)*ldw]) >= bkAlpha*rowmax:
						kp = imax
						blas.Copy(k+1, w[(kw-1)*ldw:], 1, w[kw*ldw:], 1)
					default:
						kp = imax
						kstep = 2
					}
				}
				kk := k - kstep + 1
				kkw := nb - n + kk
				if kp != kk {
					// Move row/column kk of the leading block to position kp
					// (column kk's data survives in w).
					a[kp+kp*lda] = a[kk+kk*lda]
					for j := kp + 1; j < kk; j++ {
						a[kp+j*lda] = a[j+kk*lda]
					}
					if kp > 0 {
						blas.Copy(kp, a[kk*lda:], 1, a[kp*lda:], 1)
					}
					if k < n-1 {
						blas.Swap(n-1-k, a[kk+(k+1)*lda:], lda, a[kp+(k+1)*lda:], lda)
					}
					blas.Swap(n-kk, w[kk+kkw*ldw:], ldw, w[kp+kkw*ldw:], ldw)
				}
				if kstep == 1 {
					// Store U(:,k) = w(:,kw)/d(k,k).
					blas.Copy(k+1, w[kw*ldw:], 1, a[k*lda:], 1)
					r1 := core.Div(one, a[k+k*lda])
					blas.Scal(k, r1, a[k*lda:], 1)
				} else {
					// 2×2 pivot in rows/columns k-1:k; store the two columns
					// of U = W·D⁻¹.
					if k > 1 {
						d12 := w[k-1+kw*ldw]
						d11 := core.Div(w[k+kw*ldw], d12)
						d22 := core.Div(w[k-1+(kw-1)*ldw], d12)
						t := core.Div(one, d11*d22-one)
						d12 = core.Div(t, d12)
						for j := 0; j < k-1; j++ {
							a[j+(k-1)*lda] = d12 * (d11*w[j+(kw-1)*ldw] - w[j+kw*ldw])
							a[j+k*lda] = d12 * (d22*w[j+kw*ldw] - w[j+(kw-1)*ldw])
						}
					}
					a[k-1+(k-1)*lda] = w[k-1+(kw-1)*ldw]
					a[k-1+k*lda] = w[k-1+kw*ldw]
					a[k+k*lda] = w[k+kw*ldw]
				}
			}
			if kstep == 1 {
				ipiv[k] = kp
			} else {
				ipiv[k] = -(kp + 1)
				ipiv[k-1] = -(kp + 1)
			}
			k -= kstep
		}
		// Level-3 update of the unfactored leading block
		// A(0:k+1, 0:k+1) -= U12·(D·U12ᵀ), processed in nb-wide column
		// blocks: a triangular Gemv strip plus one rectangular Gemm each.
		kRem := k + 1
		kwr := nb - n + kRem
		for j0 := ((kRem - 1) / nb) * nb; j0 >= 0; j0 -= nb {
			cfg.Checkpoint() // once per panel
			jb := min(nb, kRem-j0)
			for jj := j0; jj < j0+jb; jj++ {
				blas.Gemv(cfg, NoTrans, jj-j0+1, n-kRem, -one, a[j0+kRem*lda:], lda,
					w[jj+kwr*ldw:], ldw, one, a[j0+jj*lda:], 1)
			}
			if j0 > 0 {
				blas.Gemm(cfg, NoTrans, TransT, j0, jb, n-kRem, -one, a[kRem*lda:], lda,
					w[j0+kwr*ldw:], ldw, one, a[j0*lda:], lda)
			}
		}
		// Put U12 in standard form: partially undo the interchanges in the
		// factored columns so Sytrs can apply ipiv sequentially.
		for j := kRem; j < n; {
			jj := j
			jp := ipiv[j]
			if jp < 0 {
				jp = -jp - 1
				j++
			}
			j++
			if jp != jj && j < n {
				blas.Swap(n-j, a[jp+j*lda:], lda, a[jj+j*lda:], lda)
			}
		}
		return n - kRem, info
	}
	// Lower triangle: factor columns 0 .. at most nb-2, A column k in w
	// column k.
	k := 0
	for !((k >= nb-1 && nb < n) || k >= n) {
		blas.Copy(n-k, a[k+k*lda:], 1, w[k+k*ldw:], 1)
		if k > 0 {
			blas.Gemv(cfg, NoTrans, n-k, k, -one, a[k:], lda, w[k:], ldw, one, w[k+k*ldw:], 1)
		}
		kstep := 1
		absakk := core.Abs1(w[k+k*ldw])
		imax, colmax := 0, 0.0
		if k < n-1 {
			imax = k + 1 + blas.Iamax(n-k-1, w[k+1+k*ldw:], 1)
			colmax = core.Abs1(w[imax+k*ldw])
		}
		kp := k
		if math.Max(absakk, colmax) == 0 {
			if info == 0 {
				info = k + 1
			}
			blas.Copy(n-k, w[k+k*ldw:], 1, a[k+k*lda:], 1)
		} else {
			if absakk < bkAlpha*colmax {
				// Updated column imax into w column k+1.
				for j := k; j < imax; j++ {
					w[j+(k+1)*ldw] = a[imax+j*lda]
				}
				blas.Copy(n-imax, a[imax+imax*lda:], 1, w[imax+(k+1)*ldw:], 1)
				if k > 0 {
					blas.Gemv(cfg, NoTrans, n-k, k, -one, a[k:], lda, w[imax:], ldw,
						one, w[k+(k+1)*ldw:], 1)
				}
				jmax := k + blas.Iamax(imax-k, w[k+(k+1)*ldw:], 1)
				rowmax := core.Abs1(w[jmax+(k+1)*ldw])
				if imax < n-1 {
					jmax = imax + 1 + blas.Iamax(n-imax-1, w[imax+1+(k+1)*ldw:], 1)
					rowmax = math.Max(rowmax, core.Abs1(w[jmax+(k+1)*ldw]))
				}
				switch {
				case absakk >= bkAlpha*colmax*(colmax/rowmax):
					// kp = k: 1×1 pivot, no interchange.
				case core.Abs1(w[imax+(k+1)*ldw]) >= bkAlpha*rowmax:
					kp = imax
					blas.Copy(n-k, w[k+(k+1)*ldw:], 1, w[k+k*ldw:], 1)
				default:
					kp = imax
					kstep = 2
				}
			}
			kk := k + kstep - 1
			if kp != kk {
				a[kp+kp*lda] = a[kk+kk*lda]
				for j := kk + 1; j < kp; j++ {
					a[kp+j*lda] = a[j+kk*lda]
				}
				if kp < n-1 {
					blas.Copy(n-kp-1, a[kp+1+kk*lda:], 1, a[kp+1+kp*lda:], 1)
				}
				if k > 0 {
					blas.Swap(k, a[kk:], lda, a[kp:], lda)
				}
				blas.Swap(kk+1, w[kk:], ldw, w[kp:], ldw)
			}
			if kstep == 1 {
				blas.Copy(n-k, w[k+k*ldw:], 1, a[k+k*lda:], 1)
				if k < n-1 {
					r1 := core.Div(one, a[k+k*lda])
					blas.Scal(n-k-1, r1, a[k+1+k*lda:], 1)
				}
			} else {
				if k < n-2 {
					d21 := w[k+1+k*ldw]
					d11 := core.Div(w[k+1+(k+1)*ldw], d21)
					d22 := core.Div(w[k+k*ldw], d21)
					t := core.Div(one, d11*d22-one)
					d21 = core.Div(t, d21)
					for j := k + 2; j < n; j++ {
						a[j+k*lda] = d21 * (d11*w[j+k*ldw] - w[j+(k+1)*ldw])
						a[j+(k+1)*lda] = d21 * (d22*w[j+(k+1)*ldw] - w[j+k*ldw])
					}
				}
				a[k+k*lda] = w[k+k*ldw]
				a[k+1+k*lda] = w[k+1+k*ldw]
				a[k+1+(k+1)*lda] = w[k+1+(k+1)*ldw]
			}
		}
		if kstep == 1 {
			ipiv[k] = kp
		} else {
			ipiv[k] = -(kp + 1)
			ipiv[k+1] = -(kp + 1)
		}
		k += kstep
	}
	// Level-3 update of the trailing block A(k:n, k:n) -= L21·(D·L21ᵀ).
	for j0 := k; j0 < n; j0 += nb {
		cfg.Checkpoint() // once per panel
		jb := min(nb, n-j0)
		for jj := j0; jj < j0+jb; jj++ {
			blas.Gemv(cfg, NoTrans, j0+jb-jj, k, -one, a[jj:], lda, w[jj:], ldw,
				one, a[jj+jj*lda:], 1)
		}
		if j0+jb < n {
			blas.Gemm(cfg, NoTrans, TransT, n-j0-jb, jb, k, -one, a[j0+jb:], lda,
				w[j0:], ldw, one, a[j0+jb+j0*lda:], lda)
		}
	}
	// Partially undo the interchanges to put L21 in standard form.
	for j := k - 1; j > 0; {
		jj := j
		jp := ipiv[j]
		if jp < 0 {
			jp = -jp - 1
			j--
		}
		j--
		if jp != jj && j >= 0 {
			blas.Swap(j+1, a[jp:], lda, a[jj:], lda)
		}
	}
	return k, info
}

// Sytrf computes the Bunch–Kaufman factorization of a symmetric matrix
// (xSYTRF): panels are factored with lasyf so the bulk of the update flops
// run as Level-3 Gemm calls, with an unblocked Sytf2 cleanup on the last
// sub-panel block.
func Sytrf[T core.Scalar](cfg *core.Config, uplo Uplo, n int, a []T, lda int, ipiv []int) int {
	nb := Ilaenv(cfg, 1, "SYTRF", n, -1, -1, -1)
	if nb <= 1 || nb >= n {
		return Sytf2(uplo, n, a, lda, ipiv)
	}
	info := 0
	w := make([]T, n*nb)
	if uplo == Upper {
		// Peel panels off the trailing columns; the leading block shrinks.
		for k := n; k > 0; {
			if k <= nb {
				if iinfo := Sytf2(Upper, k, a, lda, ipiv[:k]); iinfo != 0 && info == 0 {
					info = iinfo
				}
				break
			}
			kb, iinfo := lasyf(cfg, Upper, k, nb, a, lda, ipiv, w, n)
			if iinfo != 0 && info == 0 {
				info = iinfo
			}
			k -= kb
		}
		return info
	}
	// Lower: peel panels off the leading columns; pivot indices and info
	// come back relative to the submatrix and are shifted to global rows.
	adjust := func(lo, hi, off int) {
		for j := lo; j < hi; j++ {
			if ipiv[j] >= 0 {
				ipiv[j] += off
			} else {
				ipiv[j] -= off
			}
		}
	}
	for k := 0; k < n; {
		if n-k <= nb {
			if iinfo := Sytf2(Lower, n-k, a[k+k*lda:], lda, ipiv[k:]); iinfo != 0 && info == 0 {
				info = iinfo + k
			}
			adjust(k, n, k)
			break
		}
		kb, iinfo := lasyf(cfg, Lower, n-k, nb, a[k+k*lda:], lda, ipiv[k:], w, n-k)
		if iinfo != 0 && info == 0 {
			info = iinfo + k
		}
		adjust(k, k+kb, k)
		k += kb
	}
	return info
}

// Sytrs solves A·X = B using the factorization from Sytrf (xSYTRS).
func Sytrs[T core.Scalar](cfg *core.Config, uplo Uplo, n, nrhs int, a []T, lda int, ipiv []int, b []T, ldb int) {
	if n == 0 || nrhs == 0 {
		return
	}
	one := core.FromFloat[T](1)
	at := func(i, j int) T { return a[i+j*lda] }
	if uplo == Upper {
		// First solve U·D·x' = b, walking the blocks from the bottom.
		for k := n - 1; k >= 0; {
			if ipiv[k] >= 0 {
				if kp := ipiv[k]; kp != k {
					blas.Swap(nrhs, b[k:], ldb, b[kp:], ldb)
				}
				blas.Ger(k, nrhs, -one, a[k*lda:], 1, b[k:], ldb, b, ldb)
				blas.Scal(nrhs, core.Div(one, at(k, k)), b[k:], ldb)
				k--
			} else {
				if kp := -ipiv[k] - 1; kp != k-1 {
					blas.Swap(nrhs, b[k-1:], ldb, b[kp:], ldb)
				}
				blas.Ger(k-1, nrhs, -one, a[k*lda:], 1, b[k:], ldb, b, ldb)
				blas.Ger(k-1, nrhs, -one, a[(k-1)*lda:], 1, b[k-1:], ldb, b, ldb)
				akm1k := at(k-1, k)
				akm1 := core.Div(at(k-1, k-1), akm1k)
				ak := core.Div(at(k, k), akm1k)
				denom := akm1*ak - one
				for j := 0; j < nrhs; j++ {
					bkm1 := core.Div(b[k-1+j*ldb], akm1k)
					bk := core.Div(b[k+j*ldb], akm1k)
					b[k-1+j*ldb] = core.Div(ak*bkm1-bk, denom)
					b[k+j*ldb] = core.Div(akm1*bk-bkm1, denom)
				}
				k -= 2
			}
		}
		// Then multiply by inv(Uᵀ), walking the blocks from the top.
		for k := 0; k < n; {
			if ipiv[k] >= 0 {
				blas.Gemv(cfg, TransT, k, nrhs, -one, b, ldb, a[k*lda:], 1, one, b[k:], ldb)
				if kp := ipiv[k]; kp != k {
					blas.Swap(nrhs, b[k:], ldb, b[kp:], ldb)
				}
				k++
			} else {
				blas.Gemv(cfg, TransT, k, nrhs, -one, b, ldb, a[k*lda:], 1, one, b[k:], ldb)
				blas.Gemv(cfg, TransT, k, nrhs, -one, b, ldb, a[(k+1)*lda:], 1, one, b[k+1:], ldb)
				if kp := -ipiv[k] - 1; kp != k {
					blas.Swap(nrhs, b[k:], ldb, b[kp:], ldb)
				}
				k += 2
			}
		}
		return
	}
	// Lower: solve L·D·x' = b from the top...
	for k := 0; k < n; {
		if ipiv[k] >= 0 {
			if kp := ipiv[k]; kp != k {
				blas.Swap(nrhs, b[k:], ldb, b[kp:], ldb)
			}
			if k < n-1 {
				blas.Ger(n-k-1, nrhs, -one, a[k+1+k*lda:], 1, b[k:], ldb, b[k+1:], ldb)
			}
			blas.Scal(nrhs, core.Div(one, at(k, k)), b[k:], ldb)
			k++
		} else {
			if kp := -ipiv[k] - 1; kp != k+1 {
				blas.Swap(nrhs, b[k+1:], ldb, b[kp:], ldb)
			}
			if k < n-2 {
				blas.Ger(n-k-2, nrhs, -one, a[k+2+k*lda:], 1, b[k:], ldb, b[k+2:], ldb)
				blas.Ger(n-k-2, nrhs, -one, a[k+2+(k+1)*lda:], 1, b[k+1:], ldb, b[k+2:], ldb)
			}
			akm1k := at(k+1, k)
			akm1 := core.Div(at(k, k), akm1k)
			ak := core.Div(at(k+1, k+1), akm1k)
			denom := akm1*ak - one
			for j := 0; j < nrhs; j++ {
				bkm1 := core.Div(b[k+j*ldb], akm1k)
				bk := core.Div(b[k+1+j*ldb], akm1k)
				b[k+j*ldb] = core.Div(ak*bkm1-bk, denom)
				b[k+1+j*ldb] = core.Div(akm1*bk-bkm1, denom)
			}
			k += 2
		}
	}
	// ...then multiply by inv(Lᵀ) from the bottom.
	for k := n - 1; k >= 0; {
		if ipiv[k] >= 0 {
			if k < n-1 {
				blas.Gemv(cfg, TransT, n-k-1, nrhs, -one, b[k+1:], ldb, a[k+1+k*lda:], 1, one, b[k:], ldb)
			}
			if kp := ipiv[k]; kp != k {
				blas.Swap(nrhs, b[k:], ldb, b[kp:], ldb)
			}
			k--
		} else {
			// 2×2 block occupying rows k-1 and k.
			if k < n-1 {
				blas.Gemv(cfg, TransT, n-k-1, nrhs, -one, b[k+1:], ldb, a[k+1+k*lda:], 1, one, b[k:], ldb)
				blas.Gemv(cfg, TransT, n-k-1, nrhs, -one, b[k+1:], ldb, a[k+1+(k-1)*lda:], 1, one, b[k-1:], ldb)
			}
			if kp := -ipiv[k] - 1; kp != k {
				blas.Swap(nrhs, b[k:], ldb, b[kp:], ldb)
			}
			k -= 2
		}
	}
}

// Sysv solves A·X = B for a symmetric indefinite matrix (the xSYSV driver).
func Sysv[T core.Scalar](cfg *core.Config, uplo Uplo, n, nrhs int, a []T, lda int, ipiv []int, b []T, ldb int) int {
	info := Sytrf(cfg, uplo, n, a, lda, ipiv)
	if info == 0 {
		Sytrs(cfg, uplo, n, nrhs, a, lda, ipiv, b, ldb)
	}
	return info
}

// Sycon estimates the reciprocal 1-norm condition number of a symmetric
// indefinite matrix from its Bunch–Kaufman factorization (xSYCON).
func Sycon[T core.Scalar](cfg *core.Config, uplo Uplo, n int, a []T, lda int, ipiv []int, anorm float64) float64 {
	if n == 0 {
		return 1
	}
	if anorm == 0 {
		return 0
	}
	ainvnm := Lacn2(n, func(conjTrans bool, x []T) {
		Sytrs(cfg, uplo, n, 1, a, lda, ipiv, x, n)
	})
	return rcondFromEst(ainvnm, anorm)
}

// Syrfs iteratively refines the solution of a symmetric indefinite system
// and returns error bounds (xSYRFS).
func Syrfs[T core.Scalar](cfg *core.Config, uplo Uplo, n, nrhs int, a []T, lda int, af []T, ldaf int, ipiv []int, b []T, ldb int, x []T, ldx int, ferr, berr []float64) {
	rfs(NoTrans, n, nrhs,
		func(_ Trans, alpha T, x []T, beta T, y []T) {
			blas.Symv(uplo, n, alpha, a, lda, x, 1, beta, y, 1)
		},
		func(_ Trans, xa, y []float64) { absSymv(uplo, n, a, lda, xa, y) },
		func(_ Trans, r []T) { Sytrs(cfg, uplo, n, 1, af, ldaf, ipiv, r, n) },
		b, ldb, x, ldx, ferr, berr)
}

// SysvxResult carries the outputs of Sysvx / Hesvx.
type SysvxResult struct {
	RCond float64
	Ferr  []float64
	Berr  []float64
	Info  int
}

// Sysvx is the expert driver for symmetric indefinite systems (xSYSVX).
func Sysvx[T core.Scalar](cfg *core.Config, fact Fact, uplo Uplo, n, nrhs int, a []T, lda int, af []T, ldaf int, ipiv []int, b []T, ldb int, x []T, ldx int) SysvxResult {
	res := SysvxResult{Ferr: make([]float64, nrhs), Berr: make([]float64, nrhs)}
	if fact != FactFact {
		Lacpy('A', n, n, a, lda, af, ldaf)
		res.Info = Sytrf(cfg, uplo, n, af, ldaf, ipiv)
	}
	if res.Info > 0 {
		return res
	}
	anorm := Lansy(OneNorm, uplo, n, a, lda)
	res.RCond = Sycon(cfg, uplo, n, af, ldaf, ipiv, anorm)
	Lacpy('A', n, nrhs, b, ldb, x, ldx)
	Sytrs(cfg, uplo, n, nrhs, af, ldaf, ipiv, x, ldx)
	Syrfs(cfg, uplo, n, nrhs, a, lda, af, ldaf, ipiv, b, ldb, x, ldx, res.Ferr, res.Berr)
	if res.RCond < core.Eps[T]() {
		res.Info = n + 1
	}
	return res
}
