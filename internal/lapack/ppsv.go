package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// Pptrf computes the Cholesky factorization of a symmetric/Hermitian
// positive definite matrix in packed storage (xPPTRF). Returns i > 0 if the
// leading minor of order i is not positive definite.
func Pptrf[T core.Scalar](uplo Uplo, n int, ap []T) int {
	if uplo == Upper {
		for j := 0; j < n; j++ {
			jc := j * (j + 1) / 2
			// Column solve: Uᴴ(0:j,0:j)·u_j = a_j.
			if j > 0 {
				blas.Tpsv(Upper, ConjTrans, NonUnit, j, ap, ap[jc:], 1)
			}
			ajj := core.Re(ap[jc+j]) - core.Re(blas.Dotc(j, ap[jc:], 1, ap[jc:], 1))
			if ajj <= 0 || math.IsNaN(ajj) {
				ap[jc+j] = core.FromFloat[T](ajj)
				return j + 1
			}
			ap[jc+j] = core.FromFloat[T](math.Sqrt(ajj))
		}
		return 0
	}
	jj := 0
	for j := 0; j < n; j++ {
		ajj := core.Re(ap[jj])
		if ajj <= 0 || math.IsNaN(ajj) {
			return j + 1
		}
		ajj = math.Sqrt(ajj)
		ap[jj] = core.FromFloat[T](ajj)
		if j < n-1 {
			blas.ScalReal(n-j-1, 1/ajj, ap[jj+1:], 1)
			blas.Hpr(Lower, n-j-1, -1, ap[jj+1:], 1, ap[jj+n-j:])
		}
		jj += n - j
	}
	return 0
}

// Pptrs solves A·X = B using the packed Cholesky factorization from Pptrf
// (xPPTRS).
func Pptrs[T core.Scalar](uplo Uplo, n, nrhs int, ap []T, b []T, ldb int) {
	for j := 0; j < nrhs; j++ {
		col := b[j*ldb:]
		if uplo == Upper {
			blas.Tpsv(Upper, ConjTrans, NonUnit, n, ap, col, 1)
			blas.Tpsv(Upper, NoTrans, NonUnit, n, ap, col, 1)
		} else {
			blas.Tpsv(Lower, NoTrans, NonUnit, n, ap, col, 1)
			blas.Tpsv(Lower, ConjTrans, NonUnit, n, ap, col, 1)
		}
	}
}

// Ppsv solves A·X = B for a positive definite matrix in packed storage (the
// xPPSV driver).
func Ppsv[T core.Scalar](uplo Uplo, n, nrhs int, ap []T, b []T, ldb int) int {
	info := Pptrf(uplo, n, ap)
	if info == 0 {
		Pptrs(uplo, n, nrhs, ap, b, ldb)
	}
	return info
}

// Ppcon estimates the reciprocal 1-norm condition number of a packed
// positive definite matrix from its Cholesky factorization (xPPCON).
func Ppcon[T core.Scalar](uplo Uplo, n int, ap []T, anorm float64) float64 {
	if n == 0 {
		return 1
	}
	if anorm == 0 {
		return 0
	}
	ainvnm := Lacn2(n, func(conjTrans bool, x []T) {
		Pptrs(uplo, n, 1, ap, x, n)
	})
	return rcondFromEst(ainvnm, anorm)
}

func absSpmv[T core.Scalar](uplo Uplo, n int, ap []T, xa, y []float64) {
	at := func(i, j int) float64 {
		if (uplo == Upper) == (i <= j) {
			return core.Abs1(ap[blas.PackIdx(uplo, n, i, j)])
		}
		return core.Abs1(ap[blas.PackIdx(uplo, n, j, i)])
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for k := 0; k < n; k++ {
			s += at(i, k) * xa[k]
		}
		y[i] += s
	}
}

// Pprfs iteratively refines the solution of a packed positive definite
// system and returns error bounds (xPPRFS).
func Pprfs[T core.Scalar](uplo Uplo, n, nrhs int, ap, afp []T, b []T, ldb int, x []T, ldx int, ferr, berr []float64) {
	rfs(NoTrans, n, nrhs,
		func(_ Trans, alpha T, x []T, beta T, y []T) {
			if core.IsComplex[T]() {
				blas.Hpmv(uplo, n, alpha, ap, x, 1, beta, y, 1)
			} else {
				blas.Spmv(uplo, n, alpha, ap, x, 1, beta, y, 1)
			}
		},
		func(_ Trans, xa, y []float64) { absSpmv(uplo, n, ap, xa, y) },
		func(_ Trans, r []T) { Pptrs(uplo, n, 1, afp, r, n) },
		b, ldb, x, ldx, ferr, berr)
}

// Ppsvx is the expert driver for packed positive definite systems (xPPSVX):
// optional equilibration, factorization, solve, refinement and condition
// estimation.
func Ppsvx[T core.Scalar](fact Fact, uplo Uplo, n, nrhs int, ap, afp []T, b []T, ldb int, x []T, ldx int) PosvxResult {
	res := PosvxResult{
		Equed: EquedNone,
		S:     make([]float64, n),
		Ferr:  make([]float64, nrhs),
		Berr:  make([]float64, nrhs),
	}
	for i := range res.S {
		res.S[i] = 1
	}
	diag := func(i int) float64 { return core.Re(ap[blas.PackIdx(uplo, n, i, i)]) }
	if fact == FactEquilibrate && n > 0 {
		smin, amax := diag(0), diag(0)
		ok := true
		for i := 0; i < n; i++ {
			d := diag(i)
			if d <= 0 {
				ok = false
				break
			}
			res.S[i] = d
			smin = math.Min(smin, d)
			amax = math.Max(amax, d)
		}
		if ok {
			for i := 0; i < n; i++ {
				res.S[i] = 1 / math.Sqrt(res.S[i])
			}
			if math.Sqrt(smin)/math.Sqrt(amax) < 0.1 {
				for j := 0; j < n; j++ {
					for i := 0; i <= j; i++ {
						ii, jj := i, j
						if uplo == Lower {
							ii, jj = j, i
						}
						k := blas.PackIdx(uplo, n, ii, jj)
						ap[k] *= core.FromFloat[T](res.S[i] * res.S[j])
					}
				}
				res.Equed = EquedBoth
			} else {
				for i := range res.S {
					res.S[i] = 1
				}
			}
		}
	}
	if res.Equed == EquedBoth {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				b[i+j*ldb] *= core.FromFloat[T](res.S[i])
			}
		}
	}
	if fact != FactFact {
		copy(afp[:n*(n+1)/2], ap[:n*(n+1)/2])
		res.Info = Pptrf(uplo, n, afp)
	}
	if res.Info > 0 {
		return res
	}
	anorm := Lansp(OneNorm, uplo, n, ap)
	res.RCond = Ppcon(uplo, n, afp, anorm)
	Lacpy('A', n, nrhs, b, ldb, x, ldx)
	Pptrs(uplo, n, nrhs, afp, x, ldx)
	Pprfs(uplo, n, nrhs, ap, afp, b, ldb, x, ldx, res.Ferr, res.Berr)
	if res.Equed == EquedBoth {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				x[i+j*ldx] *= core.FromFloat[T](res.S[i])
			}
		}
	}
	if res.RCond < core.Eps[T]() {
		res.Info = n + 1
	}
	return res
}
