package lapack_test

import (
	"testing"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/testutil"
)

// denseToLUBand packs a dense matrix's band into LU band storage (with kl
// fill rows on top).
func denseToLUBand[T core.Scalar](n, kl, ku int, a []T, lda, ldab int) []T {
	ab := make([]T, ldab*n)
	for j := 0; j < n; j++ {
		for i := max(0, j-ku); i <= min(n-1, j+kl); i++ {
			ab[kl+ku+i-j+j*ldab] = a[i+j*lda]
		}
	}
	return ab
}

func randBandDense[T core.Scalar](rng *lapack.Rng, n, kl, ku int) []T {
	a := make([]T, n*n)
	col := make([]T, n)
	for j := 0; j < n; j++ {
		lapack.Larnv(2, rng, n, col)
		for i := max(0, j-ku); i <= min(n-1, j+kl); i++ {
			a[i+j*n] = col[i]
		}
		a[j+j*n] += core.FromFloat[T](3) // keep it comfortably nonsingular
	}
	return a
}

func testGbsv[T core.Scalar](t *testing.T, n, kl, ku, nrhs int) {
	t.Helper()
	rng := lapack.NewRng([4]int{n, kl, ku, nrhs})
	a := randBandDense[T](rng, n, kl, ku)
	ldab := 2*kl + ku + 1
	ab := denseToLUBand(n, kl, ku, a, n, ldab)
	xTrue := testutil.RandGeneral[T](rng, n, nrhs, n)
	b := make([]T, n*nrhs)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, n, nrhs, n, core.FromFloat[T](1), a, n, xTrue, n, core.FromFloat[T](0), b, n)
	ipiv := make([]int, n)
	sol := append([]T(nil), b...)
	if info := lapack.Gbsv(n, kl, ku, nrhs, ab, ldab, ipiv, sol, n); info != 0 {
		t.Fatalf("gbsv info=%d", info)
	}
	if r := testutil.SolveResidual(n, nrhs, a, n, sol, n, b, n); r > thresh {
		t.Fatalf("gbsv residual %v", r)
	}
	// Transposed solves through the same factorization.
	for _, tr := range []lapack.Trans{lapack.TransT, lapack.ConjTrans} {
		bt := make([]T, n)
		xt := make([]T, n)
		lapack.Larnv(2, rng, n, xt)
		blas.Gemv(tcfg(), blas.Trans(tr), n, n, core.FromFloat[T](1), a, n, xt, 1, core.FromFloat[T](0), bt, 1)
		lapack.Gbtrs(tr, n, kl, ku, 1, ab, ldab, ipiv, bt, n)
		if d := testutil.MaxDiff(bt, xt); d > 1e6*core.Eps[T]() {
			t.Fatalf("gbtrs %v error %v", tr, d)
		}
	}
}

func TestGbsv(t *testing.T) {
	cases := [][4]int{{1, 0, 0, 1}, {5, 1, 1, 2}, {12, 2, 3, 2}, {30, 4, 1, 3}, {50, 7, 7, 2}, {20, 19, 19, 1}}
	for _, c := range cases {
		t.Run("float64", func(t *testing.T) { testGbsv[float64](t, c[0], c[1], c[2], c[3]) })
		t.Run("complex128", func(t *testing.T) { testGbsv[complex128](t, c[0], c[1], c[2], c[3]) })
	}
	t.Run("float32", func(t *testing.T) { testGbsv[float32](t, 12, 2, 2, 1) })
}

func TestGbconGbrfs(t *testing.T) {
	n, kl, ku, nrhs := 25, 2, 3, 2
	rng := lapack.NewRng([4]int{5, 5, 1, 2})
	a := randBandDense[float64](rng, n, kl, ku)
	ldabPlain := kl + ku + 1
	abPlain := make([]float64, ldabPlain*n)
	for j := 0; j < n; j++ {
		for i := max(0, j-ku); i <= min(n-1, j+kl); i++ {
			abPlain[ku+i-j+j*ldabPlain] = a[i+j*n]
		}
	}
	ldab := 2*kl + ku + 1
	afb := denseToLUBand(n, kl, ku, a, n, ldab)
	ipiv := make([]int, n)
	if info := lapack.Gbtrf(n, n, kl, ku, afb, ldab, ipiv); info != 0 {
		t.Fatalf("gbtrf info=%d", info)
	}
	anorm := lapack.Langb(lapack.OneNorm, n, kl, ku, abPlain, ldabPlain)
	rcond := lapack.Gbcon(lapack.OneNorm, n, kl, ku, afb, ldab, ipiv, anorm)
	if rcond <= 0 || rcond > 1.000001 {
		t.Fatalf("gbcon rcond=%v", rcond)
	}
	xTrue := testutil.RandGeneral[float64](rng, n, nrhs, n)
	b := make([]float64, n*nrhs)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, n, nrhs, n, 1, a, n, xTrue, n, 0, b, n)
	x := append([]float64(nil), b...)
	lapack.Gbtrs(lapack.NoTrans, n, kl, ku, nrhs, afb, ldab, ipiv, x, n)
	ferr := make([]float64, nrhs)
	berr := make([]float64, nrhs)
	lapack.Gbrfs(lapack.NoTrans, n, kl, ku, nrhs, abPlain, ldabPlain, afb, ldab, ipiv, b, n, x, n, ferr, berr)
	for j := 0; j < nrhs; j++ {
		if berr[j] > 100*core.Eps[float64]() {
			t.Fatalf("gbrfs berr=%v", berr[j])
		}
	}
	if d := testutil.MaxDiff(x, xTrue); d > 1e-9 {
		t.Fatalf("refined solution error %v", d)
	}
}

func TestGbsvx(t *testing.T) {
	n, kl, ku, nrhs := 18, 2, 2, 2
	rng := lapack.NewRng([4]int{2, 7, 1, 8})
	a := randBandDense[float64](rng, n, kl, ku)
	ldabPlain := kl + ku + 1
	abPlain := make([]float64, ldabPlain*n)
	for j := 0; j < n; j++ {
		for i := max(0, j-ku); i <= min(n-1, j+kl); i++ {
			abPlain[ku+i-j+j*ldabPlain] = a[i+j*n]
		}
	}
	xTrue := testutil.RandGeneral[float64](rng, n, nrhs, n)
	b := make([]float64, n*nrhs)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, n, nrhs, n, 1, a, n, xTrue, n, 0, b, n)
	ldafb := 2*kl + ku + 1
	afb := make([]float64, ldafb*n)
	ipiv := make([]int, n)
	x := make([]float64, n*nrhs)
	res := lapack.Gbsvx(lapack.FactNone, lapack.NoTrans, n, kl, ku, nrhs, abPlain, ldabPlain, afb, ldafb, ipiv, b, n, x, n)
	if res.Info != 0 {
		t.Fatalf("gbsvx info=%d", res.Info)
	}
	if d := testutil.MaxDiff(x, xTrue); d > 1e-9 {
		t.Fatalf("gbsvx error %v", d)
	}
	if res.RCond <= 0 || res.RCond > 1.000001 {
		t.Fatalf("gbsvx rcond=%v", res.RCond)
	}
}

func TestGbsvSingular(t *testing.T) {
	// Zero matrix: info must be 1.
	n, kl, ku := 4, 1, 1
	ldab := 2*kl + ku + 1
	ab := make([]float64, ldab*n)
	ipiv := make([]int, n)
	b := make([]float64, n)
	if info := lapack.Gbsv(n, kl, ku, 1, ab, ldab, ipiv, b, n); info != 1 {
		t.Fatalf("gbsv singular info=%d", info)
	}
}

// ---------- general tridiagonal ----------

func testGtsv[T core.Scalar](t *testing.T, n, nrhs int) {
	t.Helper()
	rng := lapack.NewRng([4]int{n, nrhs, 3, 3})
	dl := make([]T, max(0, n-1))
	d := make([]T, n)
	du := make([]T, max(0, n-1))
	lapack.Larnv(2, rng, n-1, dl)
	lapack.Larnv(2, rng, n-1, du)
	lapack.Larnv(2, rng, n, d)
	for i := range d {
		d[i] += core.FromFloat[T](4)
	}
	// Dense copy.
	a := make([]T, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = d[i]
		if i < n-1 {
			a[i+1+i*n] = dl[i]
			a[i+(i+1)*n] = du[i]
		}
	}
	xTrue := testutil.RandGeneral[T](rng, n, nrhs, n)
	b := make([]T, n*nrhs)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, n, nrhs, n, core.FromFloat[T](1), a, n, xTrue, n, core.FromFloat[T](0), b, n)
	dlf := append([]T(nil), dl...)
	df := append([]T(nil), d...)
	duf := append([]T(nil), du...)
	sol := append([]T(nil), b...)
	if info := lapack.Gtsv(n, nrhs, dlf, df, duf, sol, n); info != 0 {
		t.Fatalf("gtsv info=%d", info)
	}
	if r := testutil.SolveResidual(n, nrhs, a, n, sol, n, b, n); r > thresh {
		t.Fatalf("gtsv residual %v", r)
	}
	// Full factorization path with transposed solves.
	dlf = append(dlf[:0:0], dl...)
	df = append(df[:0:0], d...)
	duf = append(duf[:0:0], du...)
	du2 := make([]T, max(0, n-2))
	ipiv := make([]int, n)
	if info := lapack.Gttrf(n, dlf, df, duf, du2, ipiv); info != 0 {
		t.Fatalf("gttrf info=%d", info)
	}
	for _, tr := range []lapack.Trans{lapack.TransT, lapack.ConjTrans} {
		xt := make([]T, n)
		lapack.Larnv(2, rng, n, xt)
		bt := make([]T, n)
		blas.Gemv(tcfg(), blas.Trans(tr), n, n, core.FromFloat[T](1), a, n, xt, 1, core.FromFloat[T](0), bt, 1)
		lapack.Gttrs(tr, n, 1, dlf, df, duf, du2, ipiv, bt, n)
		if dd := testutil.MaxDiff(bt, xt); dd > 1e6*core.Eps[T]() {
			t.Fatalf("gttrs %v error %v", tr, dd)
		}
	}
	// Condition number and refinement.
	anorm := lapack.Langt(lapack.OneNorm, n, dl, d, du)
	if rc := lapack.Gtcon(lapack.OneNorm, n, dlf, df, duf, du2, ipiv, anorm); rc <= 0 || rc > 1.000001 {
		t.Fatalf("gtcon rcond=%v", rc)
	}
}

func TestGtsv(t *testing.T) {
	for _, n := range []int{2, 3, 10, 100} {
		t.Run("float64", func(t *testing.T) { testGtsv[float64](t, n, 2) })
		t.Run("complex128", func(t *testing.T) { testGtsv[complex128](t, n, 2) })
	}
}

func TestGtsvPivoting(t *testing.T) {
	// A matrix that requires row interchanges: tiny diagonal, large
	// sub-diagonal.
	n := 6
	dl := make([]float64, n-1)
	d := make([]float64, n)
	du := make([]float64, n-1)
	for i := range dl {
		dl[i] = 10
		du[i] = 1
	}
	for i := range d {
		d[i] = 1e-12
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = d[i]
		if i < n-1 {
			a[i+1+i*n] = dl[i]
			a[i+(i+1)*n] = du[i]
		}
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = float64(i + 1)
	}
	b := make([]float64, n)
	blas.Gemv(tcfg(), blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)
	if info := lapack.Gtsv(n, 1, dl, d, du, b, n); info != 0 {
		t.Fatalf("gtsv info=%d", info)
	}
	if d := testutil.MaxDiff(b, xTrue); d > 1e-6 {
		t.Fatalf("pivoted gtsv error %v", d)
	}
}

func TestGtsvx(t *testing.T) {
	n, nrhs := 15, 2
	rng := lapack.NewRng([4]int{1, 2, 1, 2})
	dl := make([]float64, n-1)
	d := make([]float64, n)
	du := make([]float64, n-1)
	lapack.Larnv(2, rng, n-1, dl)
	lapack.Larnv(2, rng, n-1, du)
	lapack.Larnv(2, rng, n, d)
	for i := range d {
		d[i] += 4
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = d[i]
		if i < n-1 {
			a[i+1+i*n] = dl[i]
			a[i+(i+1)*n] = du[i]
		}
	}
	xTrue := testutil.RandGeneral[float64](rng, n, nrhs, n)
	b := make([]float64, n*nrhs)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, n, nrhs, n, 1, a, n, xTrue, n, 0, b, n)
	dlf := make([]float64, n-1)
	df := make([]float64, n)
	duf := make([]float64, n-1)
	du2 := make([]float64, n-2)
	ipiv := make([]int, n)
	x := make([]float64, n*nrhs)
	res := lapack.Gtsvx(lapack.FactNone, lapack.NoTrans, n, nrhs, dl, d, du, dlf, df, duf, du2, ipiv, b, n, x, n)
	if res.Info != 0 {
		t.Fatalf("gtsvx info=%d", res.Info)
	}
	if dd := testutil.MaxDiff(x, xTrue); dd > 1e-9 {
		t.Fatalf("gtsvx error %v", dd)
	}
}
