package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// Larfg generates an elementary Householder reflector H = I − τ·v·vᴴ such
// that Hᴴ·[alpha; x] = [beta; 0] with beta real (xLARFG). n is the order of
// the reflector (alpha plus n−1 elements of x). On return alpha holds beta
// and x holds the tail of v (v₀ = 1 implicitly).
func Larfg[T core.Scalar](n int, alpha *T, x []T, incX int) T {
	var tau T
	if n <= 0 {
		return tau
	}
	// Note n == 1 is not a quick return for complex element types: a
	// reflector may still be needed to rotate a complex alpha onto the
	// real axis (beta is always real).
	xnorm := blas.Nrm2(n-1, x, incX)
	alphr, alphi := core.Re(*alpha), core.Im(*alpha)
	if xnorm == 0 && alphi == 0 {
		return tau
	}
	beta := -core.Sign(Lapy3(alphr, alphi, xnorm), alphr)
	safmin := core.SafeMin[T]() / core.Eps[T]()
	knt := 0
	for math.Abs(beta) < safmin && knt < 20 {
		// Rescale to avoid harmful underflow.
		knt++
		blas.ScalReal(n-1, 1/safmin, x, incX)
		beta /= safmin
		alphr /= safmin
		alphi /= safmin
		xnorm = blas.Nrm2(n-1, x, incX)
		beta = -core.Sign(Lapy3(alphr, alphi, xnorm), alphr)
	}
	if core.IsComplex[T]() {
		tau = core.FromComplex[T](complex((beta-alphr)/beta, -alphi/beta))
	} else {
		tau = core.FromFloat[T]((beta - alphr) / beta)
	}
	scale := core.Div(core.FromFloat[T](1), core.FromComplex[T](complex(alphr-beta, alphi)))
	blas.Scal(n-1, scale, x, incX)
	for k := 0; k < knt; k++ {
		beta *= safmin
	}
	*alpha = core.FromFloat[T](beta)
	return tau
}

// Larf applies the elementary reflector H = I − τ·v·vᴴ to an m×n matrix C
// from the given side (xLARF). work must have length n (Left) or m (Right).
func Larf[T core.Scalar](cfg *core.Config, side Side, m, n int, v []T, incV int, tau T, c []T, ldc int, work []T) {
	if tau == 0 {
		return
	}
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	if side == Left {
		// w = Cᴴ·v; C -= τ·v·wᴴ.
		blas.Gemv(cfg, ConjTrans, m, n, one, c, ldc, v, incV, zero, work, 1)
		blas.Gerc(m, n, -tau, v, incV, work, 1, c, ldc)
		return
	}
	// w = C·v; C -= τ·w·vᴴ.
	blas.Gemv(cfg, NoTrans, m, n, one, c, ldc, v, incV, zero, work, 1)
	blas.Gerc(m, n, -tau, work, 1, v, incV, c, ldc)
}

// Geqr2 computes the unblocked QR factorization A = Q·R (xGEQR2). tau must
// have length min(m, n); work length at least n.
func Geqr2[T core.Scalar](cfg *core.Config, m, n int, a []T, lda int, tau []T, work []T) {
	for i := 0; i < min(m, n); i++ {
		tau[i] = Larfg(m-i, &a[i+i*lda], a[min(i+1, m-1)+i*lda:], 1)
		if i < n-1 {
			aii := a[i+i*lda]
			a[i+i*lda] = core.FromFloat[T](1)
			Larf(cfg, Left, m-i, n-i-1, a[i+i*lda:], 1, core.Conj(tau[i]), a[i+(i+1)*lda:], lda, work)
			a[i+i*lda] = aii
		}
	}
}

// Geqrf computes the QR factorization of an m×n matrix (xGEQRF), using
// blocked Level-3 updates above the ILAENV crossover.
func Geqrf[T core.Scalar](cfg *core.Config, m, n int, a []T, lda int, tau []T) {
	nb := Ilaenv(cfg, 1, "GEQRF", m, n, -1, -1)
	if nb > 1 && min(m, n) > Ilaenv(cfg, 3, "GEQRF", m, n, -1, -1) {
		geqrfBlocked(cfg, m, n, a, lda, tau, nb)
		return
	}
	work := blas.GetScratch[T](max(1, n))
	defer blas.PutScratch(work)
	Geqr2(cfg, m, n, a, lda, tau, work)
}

// Org2r generates the first k columns of the unitary matrix Q from the
// reflectors returned by Geqr2 (xORG2R/xUNG2R). a is m×n with n <= m.
func Org2r[T core.Scalar](cfg *core.Config, m, n, k int, a []T, lda int, tau []T) {
	if n <= 0 {
		return
	}
	work := blas.GetScratch[T](n)
	defer blas.PutScratch(work)
	// Columns k..n-1 start as unit vectors.
	for j := k; j < n; j++ {
		for i := 0; i < m; i++ {
			a[i+j*lda] = 0
		}
		a[j+j*lda] = core.FromFloat[T](1)
	}
	for i := k - 1; i >= 0; i-- {
		if i < n-1 {
			a[i+i*lda] = core.FromFloat[T](1)
			Larf(cfg, Left, m-i, n-i-1, a[i+i*lda:], 1, tau[i], a[i+(i+1)*lda:], lda, work)
		}
		if i < m-1 {
			blas.Scal(m-i-1, -tau[i], a[i+1+i*lda:], 1)
		}
		a[i+i*lda] = core.FromFloat[T](1) - tau[i]
		for j := 0; j < i; j++ {
			a[j+i*lda] = 0
		}
	}
}

// Orgqr generates the first k columns of Q from a QR factorization
// (xORGQR/xUNGQR), applying block reflectors when k exceeds the ILAENV
// crossover.
func Orgqr[T core.Scalar](cfg *core.Config, m, n, k int, a []T, lda int, tau []T) {
	nb := Ilaenv(cfg, 1, "ORGQR", m, n, k, -1)
	if nb > 1 && k > Ilaenv(cfg, 3, "ORGQR", m, n, k, -1) {
		orgqrBlocked(cfg, m, n, k, a, lda, tau, nb)
		return
	}
	Org2r(cfg, m, n, k, a, lda, tau)
}

// Ormqr multiplies C by Q or Qᴴ from a QR factorization (xORMQR/xUNMQR):
// C := op(Q)·C (Left) or C·op(Q) (Right), where a holds the k reflectors in
// its first k columns. trans must be NoTrans or ConjTrans (use ConjTrans
// for Qᵀ in real arithmetic).
func Ormqr[T core.Scalar](cfg *core.Config, side Side, trans Trans, m, n, k int, a []T, lda int, tau []T, c []T, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	nb := Ilaenv(cfg, 1, "ORMQR", m, n, k, -1)
	if nb > 1 && k > Ilaenv(cfg, 3, "ORMQR", m, n, k, -1) {
		ormqrBlocked(cfg, side, trans, m, n, k, a, lda, tau, c, ldc, nb)
		return
	}
	wlen := n
	if side == Right {
		wlen = m
	}
	work := blas.GetScratch[T](wlen)
	defer blas.PutScratch(work)
	notran := trans == NoTrans
	forward := (side == Left) != notran
	start, end, step := k-1, -1, -1
	if forward {
		start, end, step = 0, k, 1
	}
	for i := start; i != end; i += step {
		taui := tau[i]
		if !notran {
			taui = core.Conj(taui)
		}
		aii := a[i+i*lda]
		a[i+i*lda] = core.FromFloat[T](1)
		if side == Left {
			Larf(cfg, Left, m-i, n, a[i+i*lda:], 1, taui, c[i:], ldc, work)
		} else {
			Larf(cfg, Right, m, n-i, a[i+i*lda:], 1, taui, c[i*ldc:], ldc, work)
		}
		a[i+i*lda] = aii
	}
}

// Gelq2 computes the unblocked LQ factorization A = L·Q (xGELQ2). tau must
// have length min(m, n); work length at least m.
func Gelq2[T core.Scalar](cfg *core.Config, m, n int, a []T, lda int, tau []T, work []T) {
	for i := 0; i < min(m, n); i++ {
		lacgv(n-i, a[i+i*lda:], lda)
		tau[i] = Larfg(n-i, &a[i+i*lda], a[i+min(i+1, n-1)*lda:], lda)
		if i < m-1 {
			aii := a[i+i*lda]
			a[i+i*lda] = core.FromFloat[T](1)
			Larf(cfg, Right, m-i-1, n-i, a[i+i*lda:], lda, tau[i], a[i+1+i*lda:], lda, work)
			a[i+i*lda] = aii
		}
		lacgv(n-i, a[i+i*lda:], lda)
	}
}

// Gelqf computes the LQ factorization of an m×n matrix (xGELQF), using
// blocked Level-3 updates above the ILAENV crossover.
func Gelqf[T core.Scalar](cfg *core.Config, m, n int, a []T, lda int, tau []T) {
	nb := Ilaenv(cfg, 1, "GELQF", m, n, -1, -1)
	if nb > 1 && min(m, n) > Ilaenv(cfg, 3, "GELQF", m, n, -1, -1) {
		gelqfBlocked(cfg, m, n, a, lda, tau, nb)
		return
	}
	work := blas.GetScratch[T](max(1, m))
	defer blas.PutScratch(work)
	Gelq2(cfg, m, n, a, lda, tau, work)
}

// Orgl2 generates the first k rows of the unitary matrix Q from the
// reflectors returned by Gelq2 (xORGL2/xUNGL2). a is m×n with m <= n.
func Orgl2[T core.Scalar](cfg *core.Config, m, n, k int, a []T, lda int, tau []T) {
	if m <= 0 {
		return
	}
	work := blas.GetScratch[T](m)
	defer blas.PutScratch(work)
	for i := k; i < m; i++ {
		for j := 0; j < n; j++ {
			a[i+j*lda] = 0
		}
		a[i+i*lda] = core.FromFloat[T](1)
	}
	for i := k - 1; i >= 0; i-- {
		if i < n-1 {
			lacgv(n-i-1, a[i+(i+1)*lda:], lda)
			if i < m-1 {
				a[i+i*lda] = core.FromFloat[T](1)
				Larf(cfg, Right, m-i-1, n-i, a[i+i*lda:], lda, core.Conj(tau[i]), a[i+1+i*lda:], lda, work)
			}
			blas.Scal(n-i-1, -tau[i], a[i+(i+1)*lda:], lda)
			lacgv(n-i-1, a[i+(i+1)*lda:], lda)
		}
		a[i+i*lda] = core.FromFloat[T](1) - core.Conj(tau[i])
		for j := 0; j < i; j++ {
			a[i+j*lda] = 0
		}
	}
}

// Orglq generates the first k rows of Q from an LQ factorization
// (xORGLQ/xUNGLQ).
func Orglq[T core.Scalar](cfg *core.Config, m, n, k int, a []T, lda int, tau []T) {
	Orgl2(cfg, m, n, k, a, lda, tau)
}

// Ormlq multiplies C by Q or Qᴴ from an LQ factorization (xORMLQ/xUNMLQ).
// trans must be NoTrans or ConjTrans.
func Ormlq[T core.Scalar](cfg *core.Config, side Side, trans Trans, m, n, k int, a []T, lda int, tau []T, c []T, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	wlen := n
	if side == Right {
		wlen = m
	}
	work := blas.GetScratch[T](wlen)
	defer blas.PutScratch(work)
	notran := trans == NoTrans
	// For LQ, Q = H(k)ᴴ…H(1)ᴴ with reflectors stored in rows. Application
	// order is the mirror of Ormqr.
	forward := (side == Left) == notran
	start, end, step := k-1, -1, -1
	if forward {
		start, end, step = 0, k, 1
	}
	v := make([]T, 0, max(m, n))
	for i := start; i != end; i += step {
		var taui T
		if notran {
			taui = core.Conj(tau[i])
		} else {
			taui = tau[i]
		}
		// Row i of A holds vᴴ (conjugated, from Gelq2): reconstruct v.
		var l int
		if side == Left {
			l = m - i
		} else {
			l = n - i
		}
		v = v[:0]
		v = append(v, core.FromFloat[T](1))
		for j := 1; j < l; j++ {
			v = append(v, core.Conj(a[i+(i+j)*lda]))
		}
		if side == Left {
			Larf(cfg, Left, m-i, n, v, 1, taui, c[i:], ldc, work)
		} else {
			Larf(cfg, Right, m, n-i, v, 1, taui, c[i*ldc:], ldc, work)
		}
	}
}
