package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// Lacn2 estimates the 1-norm of a matrix accessible only through
// matrix-vector products, using Higham's algorithm (xLACN2). apply must
// overwrite x with A·x when conjTrans is false and with Aᴴ·x (Aᵀ·x for real
// element types) when true. The estimate is a lower bound that is almost
// always within a factor of 3 of the true norm.
func Lacn2[T core.Scalar](n int, apply func(conjTrans bool, x []T)) float64 {
	const itmax = 5
	if n == 0 {
		return 0
	}
	x := make([]T, n)
	for i := range x {
		x[i] = core.FromFloat[T](1 / float64(n))
	}
	apply(false, x)
	if n == 1 {
		if e := core.Abs(x[0]); !math.IsNaN(e) {
			return e
		}
		return math.Inf(1)
	}
	est := blas.Asum(n, x, 1)
	signVec(x)
	apply(true, x)
	j := argmaxAbs(x)
	for iter := 2; iter <= itmax; iter++ {
		for i := range x {
			x[i] = 0
		}
		x[j] = core.FromFloat[T](1)
		apply(false, x)
		estold := est
		est = blas.Asum(n, x, 1)
		if est <= estold {
			break
		}
		signVec(x)
		apply(true, x)
		jlast := j
		j = argmaxAbs(x)
		if core.Abs(x[jlast]) == core.Abs(x[j]) {
			break
		}
	}
	// Alternative estimate on an oscillating test vector.
	altsgn := 1.0
	for i := 0; i < n; i++ {
		x[i] = core.FromFloat[T](altsgn * (1 + float64(i)/float64(n-1)))
		altsgn = -altsgn
	}
	apply(false, x)
	if t := 2 * blas.Asum(n, x, 1) / (3 * float64(n)); t > est {
		est = t
	}
	if math.IsNaN(est) {
		// The solves overflowed (Inf − Inf inside apply): the norm being
		// estimated is beyond representable range. Report +Inf — consumers
		// then derive rcond = 0 / ferr = Inf, the honest diagnosis — rather
		// than letting NaN masquerade as a condition estimate. (LAPACK
		// avoids the overflow itself via the scaled xLATRS solves; we
		// normalize the outcome instead.)
		return math.Inf(1)
	}
	return est
}

// signVec overwrites x with elementwise sign: x/|x| for complex entries
// (1 when zero), ±1 for real entries.
func signVec[T core.Scalar](x []T) {
	for i, v := range x {
		a := core.Abs(v)
		if a == 0 {
			x[i] = core.FromFloat[T](1)
		} else {
			x[i] = core.FromComplex[T](core.ToComplex(v) / complex(a, 0))
		}
	}
}

func argmaxAbs[T core.Scalar](x []T) int {
	best, bv := 0, -1.0
	for i, v := range x {
		if a := core.Abs(v); a > bv {
			best, bv = i, a
		}
	}
	return best
}

// Gecon estimates the reciprocal condition number of a general matrix from
// its LU factorization (xGECON). norm selects the 1-norm or ∞-norm; anorm
// is the corresponding norm of the original matrix.
func Gecon[T core.Scalar](cfg *core.Config, norm Norm, n int, a []T, lda int, ipiv []int, anorm float64) float64 {
	if n == 0 {
		return 1
	}
	if anorm == 0 {
		return 0
	}
	// ∞-norm of A⁻¹ equals 1-norm of A⁻ᵀ; flip the transpose sense.
	flip := norm == InfNorm
	ainvnm := Lacn2(n, func(conjTrans bool, x []T) {
		tr := NoTrans
		if conjTrans != flip {
			tr = ConjTrans
		}
		Getrs(cfg, tr, n, 1, a, lda, ipiv, x, n)
	})
	return rcondFromEst(ainvnm, anorm)
}

// rcondFromEst forms rcond = (1/ainvnm)/anorm from a norm estimate, guarding
// the intermediate overflow when ainvnm is subnormal (1/ainvnm → +Inf for
// anorm near MaxFloat64). Since ‖A‖·‖A⁻¹‖ ≥ ‖I‖ = 1 for any induced norm,
// a value above 1 can only be a rounding or overflow artifact — clamp it.
func rcondFromEst(ainvnm, anorm float64) float64 {
	if ainvnm == 0 {
		return 0
	}
	if math.IsInf(anorm, 1) || math.IsNaN(anorm) {
		// The norm of a finite matrix overflowed (e.g. column sums of
		// MaxFloat64 entries): no conditioning can be certified, and
		// Inf/Inf below would yield NaN. Report 0 — “ill-conditioned to
		// working precision”, the conservative truth.
		return 0
	}
	rcond := (1 / ainvnm) / anorm
	if rcond > 1 {
		rcond = 1
	}
	return rcond
}

// Geequ computes row and column scalings meant to equilibrate an m×n matrix
// (xGEEQU). On return r and c hold the scale factors and rowcnd/colcnd the
// ratios of smallest to largest scale; amax is the largest absolute element.
// info > 0 signals an exactly zero row (info = i) or column (info = m+j),
// 1-based as in LAPACK.
func Geequ[T core.Scalar](m, n int, a []T, lda int, r, c []float64) (rowcnd, colcnd, amax float64, info int) {
	if m == 0 || n == 0 {
		return 1, 1, 0, 0
	}
	smlnum := core.SafeMin[T]()
	bignum := 1 / smlnum
	for i := 0; i < m; i++ {
		r[i] = 0
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			r[i] = math.Max(r[i], core.Abs1(a[i+j*lda]))
		}
	}
	rcmin, rcmax := bignum, 0.0
	for i := 0; i < m; i++ {
		rcmax = math.Max(rcmax, r[i])
		rcmin = math.Min(rcmin, r[i])
	}
	amax = rcmax
	if rcmin == 0 {
		for i := 0; i < m; i++ {
			if r[i] == 0 {
				return 0, 0, amax, i + 1
			}
		}
	}
	for i := 0; i < m; i++ {
		r[i] = 1 / math.Min(math.Max(r[i], smlnum), bignum)
	}
	rowcnd = math.Max(rcmin, smlnum) / math.Min(rcmax, bignum)

	for j := 0; j < n; j++ {
		c[j] = 0
		for i := 0; i < m; i++ {
			c[j] = math.Max(c[j], core.Abs1(a[i+j*lda])*r[i])
		}
	}
	rcmin, rcmax = bignum, 0.0
	for j := 0; j < n; j++ {
		rcmax = math.Max(rcmax, c[j])
		rcmin = math.Min(rcmin, c[j])
	}
	if rcmin == 0 {
		for j := 0; j < n; j++ {
			if c[j] == 0 {
				return rowcnd, 0, amax, m + j + 1
			}
		}
	}
	for j := 0; j < n; j++ {
		c[j] = 1 / math.Min(math.Max(c[j], smlnum), bignum)
	}
	colcnd = math.Max(rcmin, smlnum) / math.Min(rcmax, bignum)
	return rowcnd, colcnd, amax, 0
}

// Equed describes which equilibration was applied by an expert driver.
type Equed byte

// Equed values, matching LAPACK's EQUED character.
const (
	EquedNone Equed = 'N'
	EquedRow  Equed = 'R'
	EquedCol  Equed = 'C'
	EquedBoth Equed = 'B'
)

// Laqge equilibrates a general matrix with the scalings from Geequ when
// they are worthwhile (xLAQGE), returning which scaling was applied.
func Laqge[T core.Scalar](m, n int, a []T, lda int, r, c []float64, rowcnd, colcnd, amax float64) Equed {
	const thresh = 0.1
	small := core.SafeMin[T]() / core.Eps[T]()
	large := 1 / small
	rowScale := rowcnd < thresh || amax < small || amax > large
	colScale := colcnd < thresh
	switch {
	case !rowScale && !colScale:
		return EquedNone
	case rowScale && !colScale:
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				a[i+j*lda] *= core.FromFloat[T](r[i])
			}
		}
		return EquedRow
	case !rowScale && colScale:
		for j := 0; j < n; j++ {
			cj := core.FromFloat[T](c[j])
			for i := 0; i < m; i++ {
				a[i+j*lda] *= cj
			}
		}
		return EquedCol
	default:
		for j := 0; j < n; j++ {
			cj := core.FromFloat[T](c[j])
			for i := 0; i < m; i++ {
				// Apply the factors one at a time, as xLAQGE's
				// R(i)*A(i,j)*C(j) does left-to-right: pre-combining
				// cj*r[i] can overflow to Inf and turn a zero entry
				// into NaN.
				a[i+j*lda] = a[i+j*lda] * core.FromFloat[T](r[i]) * cj
			}
		}
		return EquedBoth
	}
}

// Gerfs improves the computed solution X of op(A)·X = B by iterative
// refinement and returns componentwise backward errors berr and estimated
// forward error bounds ferr per right-hand side (xGERFS). a is the original
// matrix, af/ipiv its LU factorization.
func Gerfs[T core.Scalar](cfg *core.Config, trans Trans, n, nrhs int, a []T, lda int, af []T, ldaf int, ipiv []int, b []T, ldb int, x []T, ldx int, ferr, berr []float64) {
	rfs(trans, n, nrhs,
		func(tr Trans, alpha T, x []T, beta T, y []T) {
			blas.Gemv(cfg, tr, n, n, alpha, a, lda, x, 1, beta, y, 1)
		},
		func(tr Trans, xa, y []float64) { absGemv(tr, n, n, a, lda, xa, y) },
		func(tr Trans, r []T) { Getrs(cfg, tr, n, 1, af, ldaf, ipiv, r, n) },
		b, ldb, x, ldx, ferr, berr)
}

// GesvxResult carries the outputs of the expert driver Gesvx.
type GesvxResult struct {
	Equed  Equed     // equilibration actually applied
	R, C   []float64 // row/column scale factors (when equilibrated)
	RCond  float64   // reciprocal condition number estimate
	RPvGrw float64   // reciprocal pivot growth factor
	Ferr   []float64 // forward error bound per right-hand side
	Berr   []float64 // componentwise backward error per right-hand side
	Info   int       // 0, i>0 for singular U(i,i), n+1 when rcond < eps
}

// Fact selects the factorization mode of an expert driver.
type Fact byte

// Fact values, matching LAPACK's FACT character.
const (
	FactNone        Fact = 'N' // factor A
	FactFact        Fact = 'F' // factors are supplied in af/ipiv
	FactEquilibrate Fact = 'E' // equilibrate A, then factor
)

// Gesvx is the expert driver for general linear systems (xGESVX): it
// optionally equilibrates the system, factors it (unless factors are
// supplied), solves, iteratively refines, and returns error bounds and a
// condition estimate. a and b are overwritten only when equilibration is
// applied; the solution is written to x.
func Gesvx[T core.Scalar](cfg *core.Config, fact Fact, trans Trans, n, nrhs int, a []T, lda int, af []T, ldaf int, ipiv []int, b []T, ldb int, x []T, ldx int) GesvxResult {
	res := GesvxResult{
		Equed: EquedNone,
		R:     make([]float64, n),
		C:     make([]float64, n),
		Ferr:  make([]float64, nrhs),
		Berr:  make([]float64, nrhs),
	}
	for i := range res.R {
		res.R[i], res.C[i] = 1, 1
	}
	if fact == FactEquilibrate {
		rowcnd, colcnd, amax, inf := Geequ(n, n, a, lda, res.R, res.C)
		if inf == 0 {
			res.Equed = Laqge(n, n, a, lda, res.R, res.C, rowcnd, colcnd, amax)
		}
	}
	// Scale the right-hand side to match the equilibration.
	scaleRows := res.Equed == EquedRow || res.Equed == EquedBoth
	scaleCols := res.Equed == EquedCol || res.Equed == EquedBoth
	if trans == NoTrans && scaleRows {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				b[i+j*ldb] *= core.FromFloat[T](res.R[i])
			}
		}
	} else if trans != NoTrans && scaleCols {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				b[i+j*ldb] *= core.FromFloat[T](res.C[i])
			}
		}
	}
	if fact != FactFact {
		Lacpy('A', n, n, a, lda, af, ldaf)
		res.Info = Getrf(cfg, n, n, af, ldaf, ipiv)
	}
	// Reciprocal pivot growth.
	anormM := Lange(MaxAbs, n, n, a, lda)
	unormM := Lantr(MaxAbs, Upper, NonUnit, n, n, af, ldaf)
	if unormM == 0 {
		res.RPvGrw = 1
	} else {
		res.RPvGrw = anormM / unormM
	}
	if res.Info > 0 {
		return res
	}
	norm := OneNorm
	if trans != NoTrans {
		norm = InfNorm
	}
	anorm := Lange(norm, n, n, a, lda)
	res.RCond = Gecon(cfg, norm, n, af, ldaf, ipiv, anorm)
	// Solve and refine.
	Lacpy('A', n, nrhs, b, ldb, x, ldx)
	Getrs(cfg, trans, n, nrhs, af, ldaf, ipiv, x, ldx)
	Gerfs(cfg, trans, n, nrhs, a, lda, af, ldaf, ipiv, b, ldb, x, ldx, res.Ferr, res.Berr)
	// Undo equilibration on the solution.
	if trans == NoTrans && scaleCols {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				x[i+j*ldx] *= core.FromFloat[T](res.C[i])
			}
		}
	} else if trans != NoTrans && scaleRows {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				x[i+j*ldx] *= core.FromFloat[T](res.R[i])
			}
		}
	}
	if res.RCond < core.Eps[T]() {
		res.Info = n + 1
	}
	return res
}
