package lapack_test

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/testutil"
)

// bdsdcCheck runs Bdsdc on the given bidiagonal and verifies the three
// D&C-vs-QR-iteration acceptance properties: singular values agree with
// Bdsqr to ~n·eps·σ₀, U and Vᵀ are orthogonal to ~n·eps, and U·Σ·Vᵀ
// reconstructs B.
func bdsdcCheck(t *testing.T, n int, d, e []float64) {
	t.Helper()
	eps := core.EpsDouble
	// Reference spectrum by QR iteration.
	dq := append([]float64(nil), d...)
	eq := append([]float64(nil), e...)
	if info := lapack.Bdsqr[float64](tcfg(), n, dq, eq, nil, 0, 0, nil, 0, 0); info != 0 {
		t.Fatalf("bdsqr info=%d", info)
	}
	dc := append([]float64(nil), d...)
	ec := append([]float64(nil), e...)
	u := make([]float64, n*n)
	vt := make([]float64, n*n)
	if info := lapack.Bdsdc(tcfg(), n, dc, ec, u, n, vt, n); info != 0 {
		t.Fatalf("bdsdc info=%d", info)
	}
	s0 := math.Max(dq[0], 1e-300)
	for i := 0; i < n; i++ {
		if dc[i] < 0 {
			t.Fatalf("negative singular value s[%d]=%v", i, dc[i])
		}
		if i > 0 && dc[i] > dc[i-1]*(1+1e-13) {
			t.Fatalf("singular values not descending at %d: %v > %v", i, dc[i], dc[i-1])
		}
		if math.Abs(dc[i]-dq[i]) > 40*float64(n)*eps*s0 {
			t.Fatalf("s[%d]: dc=%v qr=%v (diff %v)", i, dc[i], dq[i], math.Abs(dc[i]-dq[i]))
		}
	}
	// OrthoResidual is already normalized by n·eps.
	const northo = 30.0
	if r := testutil.OrthoResidual(n, n, u, n); r > northo {
		t.Fatalf("U orthogonality %v > %v", r, northo)
	}
	if r := testutil.OrthoResidual(n, n, vt, n); r > northo {
		t.Fatalf("VT orthogonality %v > %v", r, northo)
	}
	// Reconstruction ‖U·Σ·Vᵀ − B‖max ≤ ~n·eps·σ₀.
	us := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			us[i+j*n] = u[i+j*n] * dc[j]
		}
	}
	rec := make([]float64, n*n)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, n, n, n, 1.0, us, n, vt, n, 0.0, rec, n)
	b := make([]float64, n*n)
	for i := 0; i < n; i++ {
		b[i+i*n] = d[i]
		if i < n-1 {
			b[i+(i+1)*n] = e[i]
		}
	}
	if diff := testutil.MaxDiff(rec, b); diff > 40*float64(n)*eps*s0 {
		t.Fatalf("reconstruction diff %v (σ₀=%v)", diff, s0)
	}
}

func TestBdsdcRandom(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 24, 25, 26, 40, 64, 90} {
		rng := lapack.NewRng([4]int{n, 11, 12, 13})
		d := make([]float64, n)
		e := make([]float64, max(0, n-1))
		lapack.Larnv(2, rng, n, d)
		lapack.Larnv(2, rng, max(0, n-1), e)
		bdsdcCheck(t, n, d, e)
	}
}

func TestBdsdcGraded(t *testing.T) {
	// Graded diagonal 2^0 .. 2^-50: exercises the wide dynamic range where
	// the squared-value secular solve is most stressed.
	n := 60
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := 0; i < n; i++ {
		d[i] = math.Pow(2, -float64(i)*50/float64(n-1))
		if i < n-1 {
			e[i] = d[i] * 0.25
		}
	}
	bdsdcCheck(t, n, d, e)
}

func TestBdsdcDeflationHeavy(t *testing.T) {
	// Clustered singular values (near-identical diagonal, tiny coupling):
	// nearly every merge entry deflates by rule 1 or rule 2.
	n := 70
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := 0; i < n; i++ {
		d[i] = 3 + 1e-14*float64(i%5)
		if i < n-1 {
			e[i] = 1e-13
		}
	}
	bdsdcCheck(t, n, d, e)

	// Exact zeros on the diagonal (rank deficiency).
	for i := 0; i < n; i += 7 {
		d[i] = 0
	}
	for i := range e {
		e[i] = 0.5
	}
	bdsdcCheck(t, n, d, e)
}

func TestBdsdcSigns(t *testing.T) {
	// Negative bidiagonal entries must not break the value/vector pairing.
	n := 33
	rng := lapack.NewRng([4]int{7, 5, 3, 1})
	d := make([]float64, n)
	e := make([]float64, n-1)
	lapack.Larnv(2, rng, n, d)
	lapack.Larnv(2, rng, n-1, e)
	for i := range d {
		if i%3 == 0 {
			d[i] = -d[i]
		}
	}
	for i := range e {
		if i%2 == 0 {
			e[i] = -e[i]
		}
	}
	bdsdcCheck(t, n, d, e)
}
