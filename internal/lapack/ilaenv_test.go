package lapack_test

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/lapack"
)

// TestIlaenvReductionParams pins the tuning table for the condensed-form
// reductions: panel widths at ispec 1 and the unblocked crossovers at
// ispec 3 (below which Sytrd/Gebrd/Gehrd must not pay panel bookkeeping).
func TestIlaenvReductionParams(t *testing.T) {
	cases := []struct {
		ispec int
		name  string
		want  int
	}{
		{1, "SYTRD", 32},
		{1, "HETRD", 32},
		{1, "GEBRD", 32},
		{1, "GEHRD", 32},
		{3, "SYTRD", 128},
		{3, "HETRD", 128},
		{3, "GEBRD", 128},
		{3, "GEHRD", 128},
	}
	for _, c := range cases {
		if got := lapack.Ilaenv(tcfg(), c.ispec, c.name, 1000, -1, -1, -1); got != c.want {
			t.Errorf("Ilaenv(tcfg(), %d, %q) = %d, want %d", c.ispec, c.name, got, c.want)
		}
	}
}

// TestIlaenvReductionEnvKnobs re-executes the test binary with the
// LA90_NB_TRD/BRD/HRD knobs set (the values are read once at init) and
// checks each override lands, including the clamping behaviour of
// core.EnvInt: garbage is ignored and out-of-range values degrade to the
// nearest bound instead of producing zero-width panels.
func TestIlaenvReductionEnvKnobs(t *testing.T) {
	if os.Getenv("LA90_ILAENV_HELPER") == "1" {
		fmt.Printf("KNOBS %d %d %d\n",
			lapack.Ilaenv(tcfg(), 1, "SYTRD", 1000, -1, -1, -1),
			lapack.Ilaenv(tcfg(), 1, "GEBRD", 1000, -1, -1, -1),
			lapack.Ilaenv(tcfg(), 1, "GEHRD", 1000, -1, -1, -1))
		return
	}
	cases := []struct {
		trd, brd, hrd       string
		wantT, wantB, wantH int
	}{
		// Plain overrides.
		{"64", "16", "48", 64, 16, 48},
		// Out of range clamps to [1, 4096]; garbage keeps the default.
		{"1000000", "0", "banana", 4096, 1, 32},
	}
	for _, c := range cases {
		cmd := exec.Command(os.Args[0], "-test.run", "TestIlaenvReductionEnvKnobs$", "-test.v")
		cmd.Env = append(os.Environ(),
			"LA90_ILAENV_HELPER=1",
			"LA90_NB_TRD="+c.trd, "LA90_NB_BRD="+c.brd, "LA90_NB_HRD="+c.hrd)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("helper process failed: %v\n%s", err, out)
		}
		var gotT, gotB, gotH int
		for _, line := range strings.Split(string(out), "\n") {
			if strings.HasPrefix(line, "KNOBS ") {
				if _, err := fmt.Sscanf(line, "KNOBS %d %d %d", &gotT, &gotB, &gotH); err != nil {
					t.Fatalf("parsing helper output %q: %v", line, err)
				}
			}
		}
		if gotT != c.wantT || gotB != c.wantB || gotH != c.wantH {
			t.Errorf("TRD=%q BRD=%q HRD=%q: got (%d, %d, %d), want (%d, %d, %d)",
				c.trd, c.brd, c.hrd, gotT, gotB, gotH, c.wantT, c.wantB, c.wantH)
		}
	}
}
