package lapack_test

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/testutil"
)

func TestStedcAgainstSteqr(t *testing.T) {
	for _, n := range []int{5, 24, 26, 60, 120} {
		rng := lapack.NewRng([4]int{n, 1, 2, 3})
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.Uniform11() * 2
		}
		for i := range e {
			e[i] = rng.Uniform11()
		}
		// Reference via QL/QR.
		dq := append([]float64(nil), d...)
		eq := append([]float64(nil), e...)
		if info := lapack.Sterf(tcfg(), n, dq, eq); info != 0 {
			t.Fatalf("sterf info=%d", info)
		}
		// Divide & conquer with vectors.
		dd := append([]float64(nil), d...)
		ee := append([]float64(nil), e...)
		z := make([]float64, n*n)
		for i := 0; i < n; i++ {
			z[i+i*n] = 1
		}
		if info := lapack.Stedc(tcfg(), n, dd, ee, z, n); info != 0 {
			t.Fatalf("stedc info=%d", info)
		}
		for i := 0; i < n; i++ {
			if math.Abs(dd[i]-dq[i]) > 1e-11*float64(n)*(1+math.Abs(dq[i])) {
				t.Fatalf("n=%d: eigenvalue %d: D&C %v vs QL %v", n, i, dd[i], dq[i])
			}
		}
		// Residual and orthogonality against the dense tridiagonal.
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			a[i+i*n] = d[i]
			if i < n-1 {
				a[i+1+i*n] = e[i]
				a[i+(i+1)*n] = e[i]
			}
		}
		if r := testutil.EigResidual(n, a, n, dd, z, n); r > thresh {
			t.Fatalf("n=%d: D&C residual %v", n, r)
		}
		if r := testutil.OrthoResidual(n, n, z, n); r > thresh {
			t.Fatalf("n=%d: D&C orthogonality %v", n, r)
		}
	}
}

func TestStedcWithClusters(t *testing.T) {
	// A matrix with many equal diagonal entries exercises deflation hard.
	n := 80
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	z := make([]float64, n*n)
	for i := 0; i < n; i++ {
		z[i+i*n] = 1
	}
	dd := append([]float64(nil), d...)
	if info := lapack.Stedc(tcfg(), n, dd, e, z, n); info != 0 {
		t.Fatalf("stedc info=%d", info)
	}
	for k := 0; k < n; k++ {
		want := 2 - 2*math.Cos(float64(k+1)*math.Pi/float64(n+1))
		if math.Abs(dd[k]-want) > 1e-11 {
			t.Fatalf("λ[%d]=%v want %v", k, dd[k], want)
		}
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = 2
		if i < n-1 {
			a[i+1+i*n] = -1
			a[i+(i+1)*n] = -1
		}
	}
	if r := testutil.OrthoResidual(n, n, z, n); r > thresh {
		t.Fatalf("cluster orthogonality %v", r)
	}
	if r := testutil.EigResidual(n, a, n, dd, z, n); r > thresh {
		t.Fatalf("cluster residual %v", r)
	}
}

func testSyevd[T core.Scalar](t *testing.T, n int) {
	t.Helper()
	rng := lapack.NewRng([4]int{n, 8, 8, 8})
	a := randHerm[T](rng, n, n)
	full := symFull(lapack.Upper, n, a, n)
	// Reference eigenvalues.
	ref := append([]T(nil), full...)
	wref := make([]float64, n)
	lapack.Syev[T](tcfg(), false, lapack.Upper, n, ref, n, wref)
	// D&C with vectors.
	z := append([]T(nil), a...)
	w := make([]float64, n)
	if info := lapack.Syevd[T](tcfg(), true, lapack.Upper, n, z, n, w); info != 0 {
		t.Fatalf("syevd info=%d", info)
	}
	for i := range w {
		if math.Abs(w[i]-wref[i]) > 1e-10*float64(n)*(1+math.Abs(wref[i])) {
			t.Fatalf("n=%d: syevd w[%d]=%v vs syev %v", n, i, w[i], wref[i])
		}
	}
	if r := testutil.EigResidual(n, full, n, w, z, n); r > thresh {
		t.Fatalf("n=%d syevd residual %v", n, r)
	}
	if r := testutil.OrthoResidual(n, n, z, n); r > thresh {
		t.Fatalf("n=%d syevd orthogonality %v", n, r)
	}
}

func TestSyevd(t *testing.T) {
	for _, n := range []int{3, 20, 40, 90} {
		t.Run("float64", func(t *testing.T) { testSyevd[float64](t, n) })
	}
	t.Run("complex128", func(t *testing.T) { testSyevd[complex128](t, 50) })
}

func TestStevd(t *testing.T) {
	n := 70
	rng := lapack.NewRng([4]int{4, 4, 8, 8})
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.Uniform11() * 3
	}
	for i := range e {
		e[i] = rng.Uniform11()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = d[i]
		if i < n-1 {
			a[i+1+i*n] = e[i]
			a[i+(i+1)*n] = e[i]
		}
	}
	z := make([]float64, n*n)
	if info := lapack.Stevd[float64](tcfg(), n, d, e, z, n); info != 0 {
		t.Fatalf("stevd info=%d", info)
	}
	if r := testutil.EigResidual(n, a, n, d, z, n); r > thresh {
		t.Fatalf("stevd residual %v", r)
	}
}

func TestSolveSecularBruteForce(t *testing.T) {
	// The secular solver against a dense eigensolve of D + ρ·z·zᵀ,
	// including z components spanning many orders of magnitude (the
	// near-pole regime that requires two-sided anchoring).
	for _, k := range []int{2, 5, 12, 25} {
		rng := lapack.NewRng([4]int{k, 2, 71, 8})
		d := make([]float64, k)
		z := make([]float64, k)
		for i := range d {
			d[i] = rng.Uniform11() * 3
		}
		sort.Float64s(d)
		for i := 1; i < k; i++ {
			if d[i]-d[i-1] < 1e-3 {
				d[i] = d[i-1] + 1e-3
			}
		}
		nz := 0.0
		for i := range z {
			z[i] = rng.Uniform11() * math.Pow(10, -8*rng.Uniform())
			nz += z[i] * z[i]
		}
		nz = math.Sqrt(nz)
		for i := range z {
			z[i] /= nz
		}
		rho := 0.7
		a := make([]float64, k*k)
		for j := 0; j < k; j++ {
			for i := 0; i < k; i++ {
				a[i+j*k] = rho * z[i] * z[j]
			}
			a[j+j*k] += d[j]
		}
		wref := make([]float64, k)
		ar := append([]float64(nil), a...)
		lapack.Syev[float64](tcfg(), false, lapack.Upper, k, ar, k, wref)
		lam := make([]float64, k)
		u := make([]float64, k*k)
		lapack.SolveSecularForTest(k, rho, d, z, lam, u)
		for i := range lam {
			if math.Abs(lam[i]-wref[i]) > 1e-13*(1+math.Abs(wref[i])) {
				t.Fatalf("k=%d λ[%d]=%v want %v", k, i, lam[i], wref[i])
			}
		}
		// Residual of the rank-one eigenproblem.
		for c := 0; c < k; c++ {
			for i := 0; i < k; i++ {
				s := d[i]*u[i+c*k] - lam[c]*u[i+c*k]
				for j := 0; j < k; j++ {
					s += rho * z[i] * z[j] * u[j+c*k]
				}
				if math.Abs(s) > 1e-13 {
					t.Fatalf("k=%d secular residual %v at (%d,%d)", k, s, i, c)
				}
			}
		}
	}
}

func TestStedcNoNaNs(t *testing.T) {
	// Guard against silent NaN propagation (comparisons against NaN are
	// always false, so residual checks alone would not catch it).
	for _, n := range []int{30, 50, 90} {
		rng := lapack.NewRng([4]int{n, 13, 13, 13})
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.Uniform11() * 2
		}
		for i := range e {
			e[i] = rng.Uniform11()
		}
		z := make([]float64, n*n)
		for i := 0; i < n; i++ {
			z[i+i*n] = 1
		}
		if info := lapack.Stedc(tcfg(), n, d, e, z, n); info != 0 {
			t.Fatalf("stedc info=%d", info)
		}
		for i, v := range d {
			if math.IsNaN(v) {
				t.Fatalf("n=%d: NaN eigenvalue at %d", n, i)
			}
		}
		for i, v := range z {
			if math.IsNaN(v) {
				t.Fatalf("n=%d: NaN eigenvector entry at %d", n, i)
			}
		}
	}
}
