package lapack

import (
	"math"
	"sort"

	"repro/internal/blas"
	"repro/internal/core"
)

// Bdsdc computes the singular value decomposition B = U·Σ·Vᵀ of an n×n
// real upper bidiagonal matrix by Cuppen-style divide & conquer (xBDSDC
// semantics): the bidiagonal is torn at its middle superdiagonal entry,
// the halves are solved recursively, and the two singular bases are merged
// through a rank-one secular equation with deflation. d (n) holds the
// diagonal and e (n-1) the superdiagonal; on success d holds the singular
// values in descending order. u (n×n) and vt (n×n) are overwritten with
// the left and right singular vector matrices — both are accumulated in
// float64 regardless of the driver's element type, so Gesdd can apply them
// to the Orgbr bases with one GEMM each. Returns non-zero if the Bdsqr
// fallback fails on a leaf block.
//
// The merge reuses the Stedc secular machinery (dc.go): with the extra
// column folded away, the merged matrix M satisfies MᵀM = D² + z·zᵀ, so
// the squared singular values are the roots of the same secular equation
// solveSecular bisects for the eigensolver, with ρ = 1.
// bdsdcCutoff is the leaf size of the bidiagonal divide & conquer — a
// variable only so the tests can force deep recursions on tiny matrices.
var bdsdcCutoff = dcCutoff

func Bdsdc(cfg *core.Config, n int, d, e []float64, u []float64, ldu int, vt []float64, ldvt int) int {
	if n == 0 {
		return 0
	}
	Laset('A', n, n, 0.0, 1.0, u, ldu)
	Laset('A', n, n, 0.0, 1.0, vt, ldvt)
	return bdsdcRec(cfg, n, 0, d, e, u, ldu, vt, ldvt)
}

// bdsdcRec is the recursive kernel. The subproblem is an n×(n+sqre) upper
// bidiagonal block (LAPACK's SQRE convention: sqre=1 means one extra
// column whose only entry is e[n-1]). u is the n×n left and vt the
// (n+sqre)×(n+sqre) right accumulation, both identity blocks on entry.
func bdsdcRec(cfg *core.Config, n, sqre int, d, e []float64, u []float64, ldu int, vt []float64, ldvt int) int {
	cfg.Checkpoint() // once per D&C tree node
	if n <= bdsdcCutoff || n < 3 {
		// n ≤ 2 must always be a leaf: the tear needs e[n/2], which a
		// square 2×2 block does not have.
		return bdsdcLeaf(cfg, n, sqre, d, e, u, ldu, vt, ldvt)
	}
	// Tear at row nl: B = [B1, α·e_nl + β·e_{nl+1}, B2] with B1 the leading
	// nl×(nl+1) block (its own extra column) and B2 the trailing
	// nr×(nr+sqre) block.
	nl := n / 2
	nr := n - nl - 1
	alpha := d[nl]
	beta := e[nl]
	if info := bdsdcRec(cfg, nl, 1, d[:nl], e[:nl], u, ldu, vt, ldvt); info != 0 {
		return info
	}
	off := nl + 1
	if info := bdsdcRec(cfg, nr, sqre, d[off:], e[off:], u[off+off*ldu:], ldu, vt[off+off*ldvt:], ldvt); info != 0 {
		return info
	}
	return bdsdcMerge(cfg, n, sqre, nl, alpha, beta, d, u, ldu, vt, ldvt)
}

// bdsdcLeaf solves a subproblem at or below the crossover with Bdsqr.
// When the block carries an extra column (sqre=1), a chain of right plane
// rotations against the diagonal chases e[n-1] off the matrix first, so
// the iteration sees a square bidiagonal; the rotations go straight into
// the vt accumulation and the dead column's vt row becomes a right null
// vector of the block.
func bdsdcLeaf(cfg *core.Config, n, sqre int, d, e []float64, u []float64, ldu int, vt []float64, ldvt int) int {
	m := n + sqre
	if sqre == 1 {
		f := e[n-1]
		for i := n - 1; i >= 0 && f != 0; i-- {
			c, s, r := Lartg(d[i], f)
			d[i] = r
			for col := 0; col < m; col++ {
				x, y := vt[i+col*ldvt], vt[n+col*ldvt]
				vt[i+col*ldvt] = c*x + s*y
				vt[n+col*ldvt] = -s*x + c*y
			}
			if i > 0 {
				f = -s * e[i-1]
				e[i-1] = c * e[i-1]
			}
		}
	}
	var ew []float64
	if n > 1 {
		ew = e[:n-1]
	}
	return Bdsqr(cfg, n, d, ew, vt, ldvt, m, u, ldu, n)
}

// bdsdcMerge combines the two children's singular decompositions. In the
// children's bases the block is U'·M·VT' where M is diagonal (the child
// singular values, with column nl empty — its value was consumed as α)
// plus one dense row at index nl:
//
//	z[c] = α·V1[nl, c] (c ≤ nl)   z[c] = β·V2[0, c−nl−1] (c > nl)
//
// After folding the sqre=1 extra column into column nl with one right
// rotation, MᵀM = D² + z·zᵀ: the singular values come from the secular
// equation on the squared values, the right vectors are its eigenvectors,
// and the left vectors follow from M·v = σ·u. Deflation (negligible z
// components, close singular values) shrinks the secular set; the
// surviving k-dimensional bases are applied to the gathered u columns and
// vt rows with one GEMM each — the Level-3 conversion this routine exists
// for.
func bdsdcMerge(cfg *core.Config, n, sqre, nl int, alpha, beta float64, d []float64, u []float64, ldu int, vt []float64, ldvt int) int {
	m := n + sqre
	eps := core.EpsDouble
	// Assemble the dense row in the children's right bases. V[i,j] = VT[j,i]
	// in real arithmetic, so the needed V rows are columns nl and nl+1 of
	// the accumulated vt.
	z := make([]float64, m)
	for c := 0; c <= nl; c++ {
		z[c] = alpha * vt[c+nl*ldvt]
	}
	for c := nl + 1; c < m; c++ {
		z[c] = beta * vt[c+(nl+1)*ldvt]
	}
	// Fold the extra column: a right rotation in the (nl, m-1) plane zeroes
	// z[m-1]. Column m-1 is then identically zero; its vt row is a right
	// null vector of the block and stays out of the active problem.
	if sqre == 1 {
		r := math.Hypot(z[nl], z[m-1])
		if r > 0 {
			c0 := z[nl] / r
			s0 := z[m-1] / r
			z[nl] = r
			z[m-1] = 0
			for col := 0; col < m; col++ {
				x, y := vt[nl+col*ldvt], vt[m-1+col*ldvt]
				vt[nl+col*ldvt] = c0*x + s0*y
				vt[m-1+col*ldvt] = -s0*x + c0*y
			}
		}
	}
	// Sort the n active columns by diagonal value ascending. The z-column
	// (original index nl) has no diagonal; key it below every d ≥ 0 so it
	// always lands at compressed index 0.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	key := func(c int) float64 {
		if c == nl {
			return -1
		}
		return d[c]
	}
	sort.SliceStable(perm, func(a, b int) bool { return key(perm[a]) < key(perm[b]) })
	ds := make([]float64, n)
	zs := make([]float64, n)
	for j, p := range perm {
		if p != nl {
			ds[j] = d[p]
		}
		zs[j] = z[p]
	}
	// Deflation threshold, as in dcMerge / xLASD2.
	dmax, zmax := 0.0, 0.0
	for j := 0; j < n; j++ {
		dmax = math.Max(dmax, math.Abs(ds[j]))
		zmax = math.Max(zmax, math.Abs(zs[j]))
	}
	tol := 8 * eps * math.Max(dmax, zmax)
	// The z-column must stay in the secular set (its diagonal value 0 is
	// artificial); if its z component is negligible, bump it to ±tol — an
	// O(eps·‖B‖) backward perturbation, the xLASD2 safeguard.
	if math.Abs(zs[0]) <= tol && tol > 0 {
		zs[0] = core.Sign(tol, zs[0])
	}
	deflated := make([]bool, n)
	// Rule 1: negligible z component — the column is already singular-pair
	// (d_j, e_j-vectors) exact.
	for j := 1; j < n; j++ {
		if math.Abs(zs[j]) <= tol {
			deflated[j] = true
		}
	}
	// Rule 2: nearly equal diagonal values — rotate one z component away.
	last := -1
	for j := 0; j < n; j++ {
		if deflated[j] {
			continue
		}
		if last >= 0 && math.Abs(ds[j]-ds[last]) <= tol {
			if last == 0 {
				// Close to the z-column's artificial zero means ds[j] ≤ tol:
				// a right-only rotation folds z_j into the z-column; the
				// s·d_j fill it creates is ≤ tol and is dropped.
				r := math.Hypot(zs[0], zs[j])
				if r > 0 {
					c := zs[0] / r
					s := zs[j] / r
					zs[0] = r
					zs[j] = 0
					rj := perm[j]
					for col := 0; col < m; col++ {
						x, y := vt[nl+col*ldvt], vt[rj+col*ldvt]
						vt[nl+col*ldvt] = c*x + s*y
						vt[rj+col*ldvt] = -s*x + c*y
					}
					dj := c * ds[j]
					if dj < 0 {
						dj = -dj
						for col := 0; col < m; col++ {
							vt[rj+col*ldvt] = -vt[rj+col*ldvt]
						}
					}
					ds[j] = dj
				}
				deflated[j] = true
				continue // the z-column remains the comparison anchor
			}
			r := math.Hypot(zs[last], zs[j])
			if r > 0 && math.Abs((ds[j]-ds[last])*zs[last]*zs[j])/(r*r) <= tol {
				c := zs[j] / r
				s := zs[last] / r
				// Two-sided rotation G on columns (last, j): the right side
				// goes into the vt rows, the left side into the u columns;
				// the off-diagonal coupling c·s·(d_last − d_j) ≤ tol is
				// dropped and the diagonal pair takes the c²/s² mix.
				rl, rj := perm[last], perm[j]
				for col := 0; col < m; col++ {
					x, y := vt[rl+col*ldvt], vt[rj+col*ldvt]
					vt[rl+col*ldvt] = c*x - s*y
					vt[rj+col*ldvt] = s*x + c*y
				}
				for row := 0; row < n; row++ {
					x, y := u[row+rl*ldu], u[row+rj*ldu]
					u[row+rl*ldu] = c*x - s*y
					u[row+rj*ldu] = s*x + c*y
				}
				dl, dj := ds[last], ds[j]
				ds[last] = c*c*dl + s*s*dj
				ds[j] = s*s*dl + c*c*dj
				zs[j] = r
				zs[last] = 0
				deflated[last] = true
			}
			last = j
		} else {
			last = j
		}
	}
	// Partition into the secular and deflated sets. Compressed index 0 (the
	// z-column) is always secular.
	var sec, defl []int
	for j := 0; j < n; j++ {
		if deflated[j] {
			defl = append(defl, j)
		} else {
			sec = append(sec, j)
		}
	}
	k := len(sec)
	// Candidate singular triples, built in scratch so the final descending
	// write-back never reads a slot it has already overwritten.
	sig := make([]float64, n)
	ub := blas.GetScratch[float64](n * n)
	defer blas.PutScratch(ub)
	vb := blas.GetScratch[float64](n * m)
	defer blas.PutScratch(vb)
	// Deflated pairs pass through: their u column and vt row are already
	// singular vectors of the block.
	for _, j := range defl {
		sig[j] = ds[j]
		p := perm[j]
		copy(ub[j*n:j*n+n], u[p*ldu:p*ldu+n])
		for col := 0; col < m; col++ {
			vb[j+col*n] = vt[p+col*ldvt]
		}
	}
	if k == 1 {
		// Everything except the z-column deflated: the active matrix is the
		// single column z₀·e_nl, so σ = |z₀| with the right vector already
		// in place and the left vector ±e_nl (the sign keeps +σ).
		j := sec[0]
		sig[j] = math.Abs(zs[0])
		sgn := 1.0
		if zs[0] < 0 {
			sgn = -1
		}
		for row := 0; row < n; row++ {
			ub[j*n+row] = sgn * u[row+nl*ldu]
		}
		for col := 0; col < m; col++ {
			vb[j+col*n] = vt[nl+col*ldvt]
		}
	} else if k > 0 {
		// Secular solve on the squared values: MᵀM = D² + z·zᵀ, ρ = 1.
		dd := make([]float64, k)
		dsec := make([]float64, k)
		zz := make([]float64, k)
		for a, j := range sec {
			dsec[a] = ds[j]
			dd[a] = ds[j] * ds[j]
			zz[a] = zs[j]
		}
		lams := make([]float64, k)
		uh := make([]float64, k*k)
		zhat, denom := solveSecularCore(k, 1.0, dd, zz, lams, uh)
		// Left vectors from M·v = σ·u: component j is d_j·ẑ_j/(d_j² − σ²),
		// and the z-row component (compressed index 0, where d is 0) is −1 —
		// the value Σ ẑ²/(d² − σ²) takes at a secular root. Normalizing the
		// positive multiple of M·v keeps U·Σ·Vᵀ reconstructing with +σ.
		lh := make([]float64, k*k)
		for i := 0; i < k; i++ {
			nrm := 0.0
			for a := 0; a < k; a++ {
				v := -1.0
				if a > 0 {
					v = dsec[a] * zhat[a] / denom[a+i*k]
				}
				lh[a+i*k] = v
				nrm += v * v
			}
			nrm = math.Sqrt(nrm)
			for a := 0; a < k; a++ {
				lh[a+i*k] /= nrm
			}
		}
		// Gather the secular u columns and vt rows and apply the compressed
		// bases with one GEMM each (the rotation-traffic → Level-3 move).
		gu := blas.GetScratch[float64](n * k)
		defer blas.PutScratch(gu)
		gv := blas.GetScratch[float64](k * m)
		defer blas.PutScratch(gv)
		for a, j := range sec {
			p := perm[j]
			copy(gu[a*n:a*n+n], u[p*ldu:p*ldu+n])
			for col := 0; col < m; col++ {
				gv[a+col*k] = vt[p+col*ldvt]
			}
		}
		unew := blas.GetScratch[float64](n * k)
		defer blas.PutScratch(unew)
		vnew := blas.GetScratch[float64](k * m)
		defer blas.PutScratch(vnew)
		blas.Gemm(cfg, NoTrans, NoTrans, n, k, k, 1.0, gu, n, lh, k, 0.0, unew, n)
		blas.Gemm(cfg, ConjTrans, NoTrans, k, m, k, 1.0, uh, k, gv, k, 0.0, vnew, k)
		for a, j := range sec {
			sig[j] = math.Sqrt(math.Max(lams[a], 0))
			copy(ub[j*n:j*n+n], unew[a*n:a*n+n])
			for col := 0; col < m; col++ {
				vb[j+col*n] = vnew[a+col*k]
			}
		}
	}
	// Final descending order, matching the Bdsqr convention the rest of the
	// SVD stack expects.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sig[order[a]] > sig[order[b]] })
	for i, p := range order {
		d[i] = sig[p]
		copy(u[i*ldu:i*ldu+n], ub[p*n:p*n+n])
		for col := 0; col < m; col++ {
			vt[i+col*ldvt] = vb[p+col*n]
		}
	}
	return 0
}
