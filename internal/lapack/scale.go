package lapack

// Overflow-safe scaling primitives (xLASSQ, xLAPY2/xLAPY3, xLASCL): the
// building blocks that let norms, Householder generation, and whole-matrix
// rescaling run on data anywhere in the representable range without the
// intermediate squares or products overflowing. Every norm helper in aux.go
// and the Householder generator in qr.go accumulate through these, so a
// matrix with entries near math.MaxFloat64 (or math.SmallestNonzeroFloat64)
// still produces finite, accurate results.

import (
	"math"

	"repro/internal/core"
)

// Lassq updates a scaled sum of squares (xLASSQ): given scale and ssq with
// scale²·ssq = Σ so far, it folds in the n strided elements of x and returns
// the updated pair such that
//
//	scale'² · ssq' = scale²·ssq + Σ_i |x_{i·incx}|²
//
// without the squares overflowing or underflowing. For complex element
// types the real and imaginary parts are folded in separately. The norm is
// recovered as scale·sqrt(ssq).
func Lassq[T core.Scalar](n int, x []T, incx int, scale, ssq float64) (float64, float64) {
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+incx {
		lassq(core.Re(x[ix]), &scale, &ssq)
		if core.IsComplex[T]() {
			lassq(core.Im(x[ix]), &scale, &ssq)
		}
	}
	return scale, ssq
}

// Lapy2 returns sqrt(x² + y²) without destructive underflow or overflow
// (xLAPY2).
func Lapy2(x, y float64) float64 {
	x, y = math.Abs(x), math.Abs(y)
	w, z := math.Max(x, y), math.Min(x, y)
	if z == 0 {
		return w
	}
	r := z / w
	return w * math.Sqrt(1+r*r)
}

// Lapy3 returns sqrt(x² + y² + z²) without destructive underflow or
// overflow (xLAPY3).
func Lapy3(x, y, z float64) float64 {
	return core.Hypot3(x, y, z)
}

// MatType selects the structure Lascl assumes when scaling (xLASCL TYPE).
type MatType byte

// MatType values, matching LAPACK's LASCL TYPE character.
const (
	MatGeneral    MatType = 'G' // full m×n matrix
	MatLower      MatType = 'L' // lower triangle
	MatUpper      MatType = 'U' // upper triangle
	MatHessenberg MatType = 'H' // upper Hessenberg
)

// Lascl multiplies the m×n matrix a by the real scalar cto/cfrom without
// over- or underflowing the intermediate quotient (xLASCL): the factor is
// applied in steps, each step a representable ratio. mtype selects which
// elements are touched. cfrom must be non-zero and not NaN, cto not NaN;
// info = -2 (cfrom) or -3 (cto) reports a bad factor.
func Lascl[T core.Scalar](mtype MatType, cfrom, cto float64, m, n int, a []T, lda int) (info int) {
	if cfrom == 0 || math.IsNaN(cfrom) {
		return -2
	}
	if math.IsNaN(cto) {
		return -3
	}
	if m == 0 || n == 0 {
		return 0
	}
	smlnum := core.SafeMin[T]()
	bignum := 1 / smlnum
	cfromc, ctoc := cfrom, cto
	for {
		cfrom1 := cfromc * smlnum
		var mul float64
		var done bool
		if cfrom1 == cfromc {
			// cfromc is ±Inf: mul is a signed zero or NaN as appropriate.
			mul = ctoc / cfromc
			done = true
		} else {
			cto1 := ctoc / bignum
			if cto1 == ctoc {
				// ctoc is 0 or ±Inf: mul carries the final value.
				mul = ctoc
				done = true
				cfromc = 1
			} else if math.Abs(cfrom1) > math.Abs(ctoc) && ctoc != 0 {
				mul = smlnum
				done = false
				cfromc = cfrom1
			} else if math.Abs(cto1) > math.Abs(cfromc) {
				mul = bignum
				done = false
				ctoc = cto1
			} else {
				mul = ctoc / cfromc
				done = true
			}
		}
		f := core.FromFloat[T](mul)
		switch mtype {
		case MatLower:
			for j := 0; j < n; j++ {
				for i := j; i < m; i++ {
					a[i+j*lda] *= f
				}
			}
		case MatUpper:
			for j := 0; j < n; j++ {
				for i := 0; i <= min(j, m-1); i++ {
					a[i+j*lda] *= f
				}
			}
		case MatHessenberg:
			for j := 0; j < n; j++ {
				for i := 0; i <= min(j+1, m-1); i++ {
					a[i+j*lda] *= f
				}
			}
		default: // MatGeneral
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					a[i+j*lda] *= f
				}
			}
		}
		if done {
			return 0
		}
	}
}
