package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// Gebal balances a general matrix (xGEBAL). job selects 'N' (none), 'P'
// (permute only), 'S' (scale only) or 'B' (both). On return ilo/ihi bound
// the subdiagonal-relevant part (0-based, inclusive) and scale records the
// permutations and scalings for Gebak.
func Gebal[T core.Scalar](job byte, n int, a []T, lda int, scale []float64) (ilo, ihi int) {
	for i := 0; i < n; i++ {
		scale[i] = 1
	}
	k, l := 0, n-1
	if n == 0 {
		return 0, -1
	}
	if job == 'N' {
		return 0, n - 1
	}
	swap := func(j, m int) {
		// Swap rows and columns j and m, recording m in scale.
		scale[j] = float64(m)
		if j != m {
			blas.Swap(l+1, a[j*lda:], 1, a[m*lda:], 1)
			blas.Swap(n-k, a[j+k*lda:], lda, a[m+k*lda:], lda)
		}
	}
	if job == 'P' || job == 'B' {
		// Push rows with zero off-diagonal elements to the bottom…
		for changed := true; changed && l > k; {
			changed = false
			for j := l; j >= k; j-- {
				zero := true
				for i := 0; i <= l; i++ {
					if i != j && a[j+i*lda] != 0 {
						zero = false
						break
					}
				}
				if zero {
					swap(j, l)
					if l == k {
						return k, l
					}
					l--
					changed = true
					break
				}
			}
		}
		// …and columns with zero off-diagonals to the left.
		for changed := true; changed && k < l; {
			changed = false
			for j := k; j <= l; j++ {
				zero := true
				for i := k; i <= l; i++ {
					if i != j && a[i+j*lda] != 0 {
						zero = false
						break
					}
				}
				if zero {
					swap(j, k)
					if k == l {
						return k, l
					}
					k++
					changed = true
					break
				}
			}
		}
	}
	if job == 'S' || job == 'B' {
		// Iterative row/column norm equalization with powers of 2.
		const (
			sclfac = 2.0
			factor = 0.95
		)
		sfmin1 := core.SafeMin[T]() / core.Eps[T]()
		sfmax1 := 1 / sfmin1
		for conv := false; !conv; {
			conv = true
			for i := k; i <= l; i++ {
				c, r := 0.0, 0.0
				for j := k; j <= l; j++ {
					if j == i {
						continue
					}
					c += core.Abs1(a[j+i*lda])
					r += core.Abs1(a[i+j*lda])
				}
				if c == 0 || r == 0 {
					continue
				}
				g := r / sclfac
				f := 1.0
				s := c + r
				for c < g {
					if f >= sfmax1 || c >= sfmax1 || g <= sfmin1 {
						break
					}
					f *= sclfac
					c *= sclfac
					g /= sclfac
				}
				g = c / sclfac
				for g >= r {
					if f <= sfmin1 || r >= sfmax1 {
						break
					}
					f /= sclfac
					c /= sclfac
					g /= sclfac
					r *= sclfac
				}
				if c+r >= factor*s {
					continue
				}
				if f == 1 {
					continue
				}
				conv = false
				scale[i] *= f
				fc := core.FromFloat[T](f)
				inv := core.FromFloat[T](1 / f)
				blas.Scal(n-k, inv, a[i+k*lda:], lda)
				blas.Scal(l+1, fc, a[i*lda:], 1)
			}
		}
	}
	return k, l
}

// Gebak back-transforms eigenvectors computed for a balanced matrix
// (xGEBAK). v is n×m with the eigenvectors as columns; side 'R' for right
// eigenvectors, 'L' for left.
func Gebak[T core.Scalar](job, side byte, n, ilo, ihi int, scale []float64, m int, v []T, ldv int) {
	if n == 0 || m == 0 || job == 'N' {
		return
	}
	if job == 'S' || job == 'B' {
		for i := ilo; i <= ihi; i++ {
			s := scale[i]
			if side == 'L' {
				s = 1 / s
			}
			blas.Scal(m, core.FromFloat[T](s), v[i:], ldv)
		}
	}
	if job == 'P' || job == 'B' {
		// Undo the permutations in reverse order.
		for ii := 0; ii < n; ii++ {
			i := ii
			if i >= ilo && i <= ihi {
				continue
			}
			if i < ilo {
				i = ilo - ii - 1
			}
			if i < 0 || i >= n {
				continue
			}
			k := int(scale[i])
			if k == i {
				continue
			}
			blas.Swap(m, v[i:], ldv, v[k:], ldv)
		}
	}
}

// Gehd2 reduces a general matrix to upper Hessenberg form by a unitary
// similarity transformation Qᴴ·A·Q = H (xGEHD2). Only rows/columns
// ilo..ihi (0-based, inclusive) are reduced. The reflectors are stored
// below the first subdiagonal and in tau (length n-1).
func Gehd2[T core.Scalar](cfg *core.Config, n, ilo, ihi int, a []T, lda int, tau []T) {
	work := make([]T, n)
	for i := ilo; i < ihi; i++ {
		// Annihilate A(i+2:ihi, i).
		alpha := a[i+1+i*lda]
		tau[i] = Larfg(ihi-i, &alpha, a[min(i+2, n-1)+i*lda:], 1)
		a[i+1+i*lda] = core.FromFloat[T](1)
		// Apply H(i) from the right to A(0:ihi+1, i+1:ihi+1)…
		Larf(cfg, Right, ihi+1, ihi-i, a[i+1+i*lda:], 1, tau[i], a[(i+1)*lda:], lda, work)
		// …and from the left to A(i+1:ihi+1, i+1:n).
		Larf(cfg, Left, ihi-i, n-i-1, a[i+1+i*lda:], 1, core.Conj(tau[i]), a[i+1+(i+1)*lda:], lda, work)
		a[i+1+i*lda] = alpha
	}
}

// Lahr2 reduces the nb columns of a starting at column 0 (rows k..n-1
// active, rows 0..k-1 above the reduction) to Hessenberg form, returning
// the block reflector factor T (nb×nb upper triangular) and Y = A·V·T
// (n×nb) so the blocked Gehrd can apply the whole panel with GEMM
// (xLAHR2). a points at the panel's first column inside the full matrix;
// its trailing columns (beyond nb) are read for the Y computation. The
// last column of t is used as scratch, as in LAPACK.
func Lahr2[T core.Scalar](cfg *core.Config, n, k, nb int, a []T, lda int, tau []T, t []T, ldt int, y []T, ldy int) {
	if n <= 1 {
		return
	}
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	var ei T
	for i := 0; i < nb; i++ {
		if i > 0 {
			// Update column i: b := b − Y·Vᴴ(row k+i-1) …
			lacgv(i, a[k+i-1:], lda)
			blas.Gemv(cfg, NoTrans, n-k, i, -one, y[k:], ldy, a[k+i-1:], lda,
				one, a[k+i*lda:], 1)
			lacgv(i, a[k+i-1:], lda)
			// …then b := (I − V·Tᴴ·Vᴴ)·b, using t's last column as scratch.
			w := t[(nb-1)*ldt:]
			blas.Copy(i, a[k+i*lda:], 1, w, 1)
			blas.Trmv(Lower, ConjTrans, Unit, i, a[k:], lda, w, 1)
			blas.Gemv(cfg, ConjTrans, n-k-i, i, one, a[k+i:], lda, a[k+i+i*lda:], 1, one, w, 1)
			blas.Trmv(Upper, ConjTrans, NonUnit, i, t, ldt, w, 1)
			blas.Gemv(cfg, NoTrans, n-k-i, i, -one, a[k+i:], lda, w, 1, one, a[k+i+i*lda:], 1)
			blas.Trmv(Lower, NoTrans, Unit, i, a[k:], lda, w, 1)
			blas.Axpy(i, -one, w, 1, a[k+i*lda:], 1)
			a[k+i-1+(i-1)*lda] = ei
		}
		// Reflector H(i) annihilating A(k+i+1:n, i).
		alpha := a[k+i+i*lda]
		tau[i] = Larfg(n-k-i, &alpha, a[min(k+i+1, n-1)+i*lda:], 1)
		ei = alpha
		a[k+i+i*lda] = one
		// Y(k:n, i) = A(k:n, i+1:)·v − Y·(Vᴴ·v), scaled by tau.
		blas.Gemv(cfg, NoTrans, n-k, n-k-i, one, a[k+(i+1)*lda:], lda, a[k+i+i*lda:], 1,
			zero, y[k+i*ldy:], 1)
		blas.Gemv(cfg, ConjTrans, n-k-i, i, one, a[k+i:], lda, a[k+i+i*lda:], 1,
			zero, t[i*ldt:], 1)
		blas.Gemv(cfg, NoTrans, n-k, i, -one, y[k:], ldy, t[i*ldt:], 1, one, y[k+i*ldy:], 1)
		blas.Scal(n-k, tau[i], y[k+i*ldy:], 1)
		// T(0:i, i) from the Vᴴ·v products already sitting in t's column i.
		blas.Scal(i, -tau[i], t[i*ldt:], 1)
		blas.Trmv(Upper, NoTrans, NonUnit, i, t, ldt, t[i*ldt:], 1)
		t[i+i*ldt] = tau[i]
	}
	a[k+nb-1+(nb-1)*lda] = ei
	// Y(0:k, :) = A(0:k, 1:)·V·T for the rows above the reduction.
	for j := 0; j < nb; j++ {
		copy(y[j*ldy:j*ldy+k], a[(j+1)*lda:(j+1)*lda+k])
	}
	blas.Trmm(Right, Lower, NoTrans, Unit, k, nb, one, a[k:], lda, y, ldy)
	if n > k+nb {
		blas.Gemm(cfg, NoTrans, NoTrans, k, nb, n-k-nb, one, a[(nb+1)*lda:], lda,
			a[k+nb:], lda, one, y, ldy)
	}
	blas.Trmm(Right, Upper, NoTrans, NonUnit, k, nb, one, t, ldt, y, ldy)
}

// Gehrd reduces a matrix to upper Hessenberg form (xGEHRD). When the active
// block ihi−ilo+1 exceeds the Ilaenv crossover the reduction is blocked:
// Lahr2 builds an nb-reflector panel with its block factor T and Y = A·V·T,
// then the trailing matrix is updated Larfb-style with GEMM on the packed
// Level-3 engine — one GEMM applying the panel from the right, a Trmm+Axpy
// sweep for the rows above ilo, and a blocked Larfb from the left. Below
// the crossover the unblocked Gehd2 runs directly. The floating-point
// schedule is worker-count independent.
func Gehrd[T core.Scalar](cfg *core.Config, n, ilo, ihi int, a []T, lda int, tau []T) {
	for i := 0; i < ilo; i++ {
		if i < len(tau) {
			tau[i] = 0
		}
	}
	for i := ihi; i < n-1; i++ {
		tau[i] = 0
	}
	nb := Ilaenv(cfg, 1, "GEHRD", n, ilo, ihi, -1)
	nx := max(nb, Ilaenv(cfg, 3, "GEHRD", n, ilo, ihi, -1))
	nh := ihi - ilo + 1
	if nh <= nx || nb <= 1 {
		Gehd2(cfg, n, ilo, ihi, a, lda, tau)
		return
	}
	one := core.FromFloat[T](1)
	ldy := n
	y := blas.GetScratch[T](ldy * nb)
	defer blas.PutScratch(y)
	work := blas.GetScratch[T](n * nb)
	defer blas.PutScratch(work)
	t := make([]T, nb*nb)
	var i int
	for i = ilo; i < ihi-nx; i += nb {
		ib := min(nb, ihi-i)
		// Reduce columns i:i+ib, accumulating V, T and Y = A·V·T.
		Lahr2(cfg, ihi+1, i+1, ib, a[i*lda:], lda, tau[i:], t, nb, y, ldy)
		// Apply the panel from the right to A(0:ihi+1, i+ib:ihi+1):
		// A −= Y·Vᴴ, with the subdiagonal head of the last reflector
		// temporarily set to one.
		ei := a[i+ib+(i+ib-1)*lda]
		a[i+ib+(i+ib-1)*lda] = one
		blas.Gemm(cfg, NoTrans, ConjTrans, ihi+1, ihi-i-ib+1, ib, -one,
			y, ldy, a[i+ib+i*lda:], lda, one, a[(i+ib)*lda:], lda)
		a[i+ib+(i+ib-1)*lda] = ei
		// Right-apply to the rows above the panel, columns i+1:i+ib.
		blas.Trmm(Right, Lower, ConjTrans, Unit, i+1, ib-1, one,
			a[i+1+i*lda:], lda, y, ldy)
		for j := 0; j < ib-1; j++ {
			blas.Axpy(i+1, -one, y[j*ldy:], 1, a[(i+j+1)*lda:], 1)
		}
		// Left-apply Hᴴ to the trailing columns.
		Larfb(cfg, ConjTrans, ihi-i, n-i-ib, ib, a[i+1+i*lda:], lda, t, nb,
			a[i+1+(i+ib)*lda:], lda, work)
	}
	Gehd2(cfg, n, i, ihi, a, lda, tau)
}

// Orghr generates the unitary matrix Q from a Hessenberg reduction
// (xORGHR/xUNGHR), overwriting a.
func Orghr[T core.Scalar](cfg *core.Config, n, ilo, ihi int, a []T, lda int, tau []T) {
	// Shift the reflectors one column to the right and generate in the
	// ilo+1..ihi block; everything outside is the identity.
	for j := ihi; j > ilo; j-- {
		for i := 0; i <= j; i++ {
			a[i+j*lda] = 0
		}
		for i := j + 1; i <= ihi; i++ {
			a[i+j*lda] = a[i+(j-1)*lda]
		}
		for i := ihi + 1; i < n; i++ {
			a[i+j*lda] = 0
		}
	}
	for j := 0; j <= ilo; j++ {
		for i := 0; i < n; i++ {
			a[i+j*lda] = 0
		}
		a[j+j*lda] = core.FromFloat[T](1)
	}
	for j := ihi + 1; j < n; j++ {
		for i := 0; i < n; i++ {
			a[i+j*lda] = 0
		}
		a[j+j*lda] = core.FromFloat[T](1)
	}
	nh := ihi - ilo
	if nh > 0 {
		Org2r(cfg, nh, nh, nh, a[ilo+1+(ilo+1)*lda:], lda, tau[ilo:])
	}
}

// Lanv2 computes the Schur factorization of a real 2×2 matrix
// [a b; c d], standardizing it so that on return either c = 0 (two real
// eigenvalues) or a = d and sign(b) = -sign(c) (a complex conjugate pair)
// (xLANV2). The eigenvalues are (rt1r, rt1i) and (rt2r, rt2i); (cs, sn) is
// the Givens rotation realizing the transformation.
func Lanv2(a, b, c, d float64) (aa, bb, cc, dd, rt1r, rt1i, rt2r, rt2i, cs, sn float64) {
	const multpl = 4.0
	eps := core.EpsDouble
	switch {
	case c == 0:
		cs, sn = 1, 0
	case b == 0:
		// Swap rows and columns.
		cs, sn = 0, 1
		a, b, c, d = d, -c, 0, a
	case (a-d) == 0 && core.Sign(1, b) != core.Sign(1, c):
		cs, sn = 1, 0
	default:
		temp := a - d
		p := 0.5 * temp
		bcmax := math.Max(math.Abs(b), math.Abs(c))
		bcmis := math.Min(math.Abs(b), math.Abs(c)) * core.Sign(1, b) * core.Sign(1, c)
		scale := math.Max(math.Abs(p), bcmax)
		z := (p/scale)*p + (bcmax/scale)*bcmis
		if z >= multpl*eps {
			// Real eigenvalues: compute a (the shifted eigenvalue), d and
			// the rotation.
			z = p + core.Sign(math.Sqrt(scale)*math.Sqrt(z), p)
			a = d + z
			d -= (bcmax / z) * bcmis
			tau := math.Hypot(c, z)
			cs = z / tau
			sn = c / tau
			b -= c
			c = 0
		} else {
			// Complex or almost-equal real eigenvalues.
			sigma := b + c
			tau := math.Hypot(sigma, temp)
			cs = math.Sqrt(0.5 * (1 + math.Abs(sigma)/tau))
			sn = -(p / (tau * cs)) * core.Sign(1, sigma)
			// [aa bb; cc dd] = [a b; c d]·[cs -sn; sn cs]
			aa := a*cs + b*sn
			bb := -a*sn + b*cs
			cc := c*cs + d*sn
			dd := -c*sn + d*cs
			// [a b; c d] = [cs sn; -sn cs]·[aa bb; cc dd]
			a = aa*cs + cc*sn
			b = bb*cs + dd*sn
			c = -aa*sn + cc*cs
			d = -bb*sn + dd*cs
			temp = 0.5 * (a + d)
			a = temp
			d = temp
			if c != 0 {
				if b != 0 {
					if core.Sign(1, b) == core.Sign(1, c) {
						// Real eigenvalues: reduce to upper triangular form.
						sab := core.Sign(math.Sqrt(math.Abs(b)), b)
						sac := core.Sign(math.Sqrt(math.Abs(c)), c)
						p = sab * sac
						tau = 1 / math.Sqrt(math.Abs(b+c))
						a = temp + p
						d = temp - p
						b -= c
						c = 0
						cs1 := sab * tau
						sn1 := sac * tau
						cs, sn = cs*cs1-sn*sn1, cs*sn1+sn*cs1
					}
				} else {
					b, c = -c, 0
					cs, sn = -sn, cs
				}
			}
		}
	}
	rt1r, rt2r = a, d
	if c == 0 {
		rt1i, rt2i = 0, 0
	} else {
		rt1i = math.Sqrt(math.Abs(b)) * math.Sqrt(math.Abs(c))
		rt2i = -rt1i
	}
	return a, b, c, d, rt1r, rt1i, rt2r, rt2i, cs, sn
}
