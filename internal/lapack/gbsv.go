package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// LU band storage (identical to LAPACK xGBTRF): the factorization of an
// n×n band matrix with kl sub- and ku super-diagonals is held in an array
// ab with ldab >= 2*kl+ku+1. On entry the matrix occupies rows kl..2*kl+ku
// (element (i,j) at ab[kl+ku+i-j + j*ldab]); the top kl rows provide space
// for the fill-in super-diagonals of U created by pivoting.

// Gbtf2 computes the unblocked LU factorization with partial pivoting of a
// band matrix (xGBTF2). ipiv is 0-based. Returns i > 0 when U(i,i) is
// exactly zero.
func Gbtf2[T core.Scalar](m, n, kl, ku int, ab []T, ldab int, ipiv []int) int {
	kv := kl + ku
	info := 0
	// Zero the fill-in rows of the initial columns.
	for j := ku + 1; j < min(kv, n); j++ {
		for i := kv - j; i < kl; i++ {
			ab[i+j*ldab] = 0
		}
	}
	ju := 0 // last column affected by interchanges so far
	one := core.FromFloat[T](1)
	for j := 0; j < min(m, n); j++ {
		if j+kv < n {
			for i := 0; i < kl; i++ {
				ab[i+(j+kv)*ldab] = 0
			}
		}
		km := min(kl, m-1-j)
		jp := blas.Iamax(km+1, ab[kv+j*ldab:], 1)
		ipiv[j] = jp + j
		if ab[kv+jp+j*ldab] != 0 {
			ju = max(ju, min(j+ku+jp, n-1))
			if jp != 0 {
				blas.Swap(ju-j+1, ab[kv+jp+j*ldab:], ldab-1, ab[kv+j*ldab:], ldab-1)
			}
			if km > 0 {
				inv := core.Div(one, ab[kv+j*ldab])
				blas.Scal(km, inv, ab[kv+1+j*ldab:], 1)
				if ju > j {
					blas.Ger(km, ju-j, -one, ab[kv+1+j*ldab:], 1,
						ab[kv-1+(j+1)*ldab:], ldab-1, ab[kv+(j+1)*ldab:], ldab-1)
				}
			}
		} else if info == 0 {
			info = j + 1
		}
	}
	return info
}

// Gbtrf computes the LU factorization with partial pivoting of a band
// matrix (xGBTRF; delegates to the unblocked algorithm, which is efficient
// for the narrow bands this library targets).
func Gbtrf[T core.Scalar](m, n, kl, ku int, ab []T, ldab int, ipiv []int) int {
	return Gbtf2(m, n, kl, ku, ab, ldab, ipiv)
}

// Gbtrs solves op(A)·X = B using the band LU factorization from Gbtrf
// (xGBTRS).
func Gbtrs[T core.Scalar](trans Trans, n, kl, ku, nrhs int, ab []T, ldab int, ipiv []int, b []T, ldb int) {
	if n == 0 || nrhs == 0 {
		return
	}
	kv := kl + ku
	one := core.FromFloat[T](1)
	if trans == NoTrans {
		if kl > 0 {
			for j := 0; j < n-1; j++ {
				lm := min(kl, n-1-j)
				if l := ipiv[j]; l != j {
					blas.Swap(nrhs, b[l:], ldb, b[j:], ldb)
				}
				blas.Ger(lm, nrhs, -one, ab[kv+1+j*ldab:], 1, b[j:], ldb, b[j+1:], ldb)
			}
		}
		for j := 0; j < nrhs; j++ {
			blas.Tbsv(Upper, NoTrans, NonUnit, n, kv, ab, ldab, b[j*ldb:], 1)
		}
		return
	}
	// Transposed / conjugate-transposed solve.
	for j := 0; j < nrhs; j++ {
		blas.Tbsv(Upper, trans, NonUnit, n, kv, ab, ldab, b[j*ldb:], 1)
	}
	if kl > 0 {
		for j := n - 2; j >= 0; j-- {
			lm := min(kl, n-1-j)
			for k := 0; k < nrhs; k++ {
				var s T
				if trans == ConjTrans {
					s = blas.Dotc(lm, ab[kv+1+j*ldab:], 1, b[j+1+k*ldb:], 1)
				} else {
					s = blas.Dotu(lm, ab[kv+1+j*ldab:], 1, b[j+1+k*ldb:], 1)
				}
				b[j+k*ldb] -= s
			}
			if l := ipiv[j]; l != j {
				blas.Swap(nrhs, b[l:], ldb, b[j:], ldb)
			}
		}
	}
}

// Gbsv solves A·X = B for a general band matrix (the xGBSV driver).
func Gbsv[T core.Scalar](n, kl, ku, nrhs int, ab []T, ldab int, ipiv []int, b []T, ldb int) int {
	info := Gbtrf(n, n, kl, ku, ab, ldab, ipiv)
	if info == 0 {
		Gbtrs(NoTrans, n, kl, ku, nrhs, ab, ldab, ipiv, b, ldb)
	}
	return info
}

// Gbcon estimates the reciprocal condition number of a band matrix from its
// LU factorization (xGBCON).
func Gbcon[T core.Scalar](norm Norm, n, kl, ku int, ab []T, ldab int, ipiv []int, anorm float64) float64 {
	if n == 0 {
		return 1
	}
	if anorm == 0 {
		return 0
	}
	flip := norm == InfNorm
	ainvnm := Lacn2(n, func(conjTrans bool, x []T) {
		tr := NoTrans
		if conjTrans != flip {
			tr = ConjTrans
		}
		Gbtrs(tr, n, kl, ku, 1, ab, ldab, ipiv, x, n)
	})
	return rcondFromEst(ainvnm, anorm)
}

// Gbequ computes row and column scalings to equilibrate a band matrix
// (xGBEQU). The semantics match Geequ. The matrix is given in unfactored
// band storage with leading dimension ldab and row offset rowOff (kl+ku for
// LU-style storage with fill rows, ku for plain band storage).
func Gbequ[T core.Scalar](m, n, kl, ku int, ab []T, ldab, rowOff int, r, c []float64) (rowcnd, colcnd, amax float64, info int) {
	if m == 0 || n == 0 {
		return 1, 1, 0, 0
	}
	smlnum := core.SafeMin[T]()
	bignum := 1 / smlnum
	for i := 0; i < m; i++ {
		r[i] = 0
	}
	for j := 0; j < n; j++ {
		for i := max(0, j-ku); i <= min(m-1, j+kl); i++ {
			r[i] = math.Max(r[i], core.Abs1(ab[rowOff+i-j+j*ldab]))
		}
	}
	rcmin, rcmax := bignum, 0.0
	for i := 0; i < m; i++ {
		rcmax = math.Max(rcmax, r[i])
		rcmin = math.Min(rcmin, r[i])
	}
	amax = rcmax
	if rcmin == 0 {
		for i := 0; i < m; i++ {
			if r[i] == 0 {
				return 0, 0, amax, i + 1
			}
		}
	}
	for i := 0; i < m; i++ {
		r[i] = 1 / math.Min(math.Max(r[i], smlnum), bignum)
	}
	rowcnd = math.Max(rcmin, smlnum) / math.Min(rcmax, bignum)
	for j := 0; j < n; j++ {
		c[j] = 0
		for i := max(0, j-ku); i <= min(m-1, j+kl); i++ {
			c[j] = math.Max(c[j], core.Abs1(ab[rowOff+i-j+j*ldab])*r[i])
		}
	}
	rcmin, rcmax = bignum, 0.0
	for j := 0; j < n; j++ {
		rcmax = math.Max(rcmax, c[j])
		rcmin = math.Min(rcmin, c[j])
	}
	if rcmin == 0 {
		for j := 0; j < n; j++ {
			if c[j] == 0 {
				return rowcnd, 0, amax, m + j + 1
			}
		}
	}
	for j := 0; j < n; j++ {
		c[j] = 1 / math.Min(math.Max(c[j], smlnum), bignum)
	}
	colcnd = math.Max(rcmin, smlnum) / math.Min(rcmax, bignum)
	return rowcnd, colcnd, amax, 0
}

// absGbmv computes y += |op(A)|·xa for a band matrix in plain band storage
// with row offset rowOff.
func absGbmv[T core.Scalar](trans Trans, n, kl, ku int, ab []T, ldab, rowOff int, xa, y []float64) {
	for j := 0; j < n; j++ {
		for i := max(0, j-ku); i <= min(n-1, j+kl); i++ {
			v := core.Abs1(ab[rowOff+i-j+j*ldab])
			if trans == NoTrans {
				y[i] += v * xa[j]
			} else {
				y[j] += v * xa[i]
			}
		}
	}
}

// Gbrfs iteratively refines the solution of a band system and returns error
// bounds (xGBRFS). ab is the original matrix in plain band storage (row
// offset ku); afb is the LU factorization in LU band storage.
func Gbrfs[T core.Scalar](trans Trans, n, kl, ku, nrhs int, ab []T, ldab int, afb []T, ldafb int, ipiv []int, b []T, ldb int, x []T, ldx int, ferr, berr []float64) {
	rfs(trans, n, nrhs,
		func(tr Trans, alpha T, x []T, beta T, y []T) {
			blas.Gbmv(tr, n, n, kl, ku, alpha, ab, ldab, x, 1, beta, y, 1)
		},
		func(tr Trans, xa, y []float64) { absGbmv(tr, n, kl, ku, ab, ldab, ku, xa, y) },
		func(tr Trans, r []T) { Gbtrs(tr, n, kl, ku, 1, afb, ldafb, ipiv, r, n) },
		b, ldb, x, ldx, ferr, berr)
}

// Gbsvx is the expert driver for general band systems (xGBSVX). ab holds
// the matrix in plain band storage (ldab >= kl+ku+1); afb (ldafb >=
// 2*kl+ku+1) receives the LU factorization. Results mirror Gesvx.
func Gbsvx[T core.Scalar](fact Fact, trans Trans, n, kl, ku, nrhs int, ab []T, ldab int, afb []T, ldafb int, ipiv []int, b []T, ldb int, x []T, ldx int) GesvxResult {
	res := GesvxResult{
		Equed: EquedNone,
		R:     make([]float64, n),
		C:     make([]float64, n),
		Ferr:  make([]float64, nrhs),
		Berr:  make([]float64, nrhs),
	}
	for i := range res.R {
		res.R[i], res.C[i] = 1, 1
	}
	if fact == FactEquilibrate {
		rowcnd, colcnd, amax, inf := Gbequ(n, n, kl, ku, ab, ldab, ku, res.R, res.C)
		if inf == 0 {
			const thresh = 0.1
			small := core.SafeMin[T]() / core.Eps[T]()
			large := 1 / small
			rowScale := rowcnd < thresh || amax < small || amax > large
			colScale := colcnd < thresh
			if rowScale || colScale {
				for j := 0; j < n; j++ {
					for i := max(0, j-ku); i <= min(n-1, j+kl); i++ {
						s := 1.0
						if rowScale {
							s *= res.R[i]
						}
						if colScale {
							s *= res.C[j]
						}
						ab[ku+i-j+j*ldab] *= core.FromFloat[T](s)
					}
				}
				switch {
				case rowScale && colScale:
					res.Equed = EquedBoth
				case rowScale:
					res.Equed = EquedRow
				default:
					res.Equed = EquedCol
				}
			}
		}
	}
	scaleRows := res.Equed == EquedRow || res.Equed == EquedBoth
	scaleCols := res.Equed == EquedCol || res.Equed == EquedBoth
	if trans == NoTrans && scaleRows {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				b[i+j*ldb] *= core.FromFloat[T](res.R[i])
			}
		}
	} else if trans != NoTrans && scaleCols {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				b[i+j*ldb] *= core.FromFloat[T](res.C[i])
			}
		}
	}
	if fact != FactFact {
		// Copy the band into the factored storage (rows kl..2*kl+ku).
		for j := 0; j < n; j++ {
			for i := 0; i <= kl+ku; i++ {
				afb[kl+i+j*ldafb] = ab[i+j*ldab]
			}
		}
		res.Info = Gbtrf(n, n, kl, ku, afb, ldafb, ipiv)
	}
	if res.Info > 0 {
		return res
	}
	norm := OneNorm
	if trans != NoTrans {
		norm = InfNorm
	}
	anorm := Langb(norm, n, kl, ku, ab[0:], ldab)
	res.RCond = Gbcon(norm, n, kl, ku, afb, ldafb, ipiv, anorm)
	Lacpy('A', n, nrhs, b, ldb, x, ldx)
	Gbtrs(trans, n, kl, ku, nrhs, afb, ldafb, ipiv, x, ldx)
	Gbrfs(trans, n, kl, ku, nrhs, ab, ldab, afb, ldafb, ipiv, b, ldb, x, ldx, res.Ferr, res.Berr)
	if trans == NoTrans && scaleCols {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				x[i+j*ldx] *= core.FromFloat[T](res.C[i])
			}
		}
	} else if trans != NoTrans && scaleRows {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				x[i+j*ldx] *= core.FromFloat[T](res.R[i])
			}
		}
	}
	if res.RCond < core.Eps[T]() {
		res.Info = n + 1
	}
	return res
}
