package lapack_test

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/testutil"
)

func testSygv[T core.Scalar](t *testing.T, itype int, uplo lapack.Uplo, n int) {
	t.Helper()
	rng := lapack.NewRng([4]int{itype, int(uplo), n, 99})
	var a []T
	if core.IsComplex[T]() {
		a = randHerm[T](rng, n, n)
	} else {
		a = randSym[T](rng, n, n)
	}
	b := testutil.RandSPD[T](rng, n, n)
	af := append([]T(nil), a...)
	bf := append([]T(nil), b...)
	w := make([]float64, n)
	if info := lapack.Sygv(tcfg(), itype, true, uplo, n, af, n, bf, n, w); info != 0 {
		t.Fatalf("sygv info=%d", info)
	}
	// Residual per eigenpair depends on itype:
	//	1: A·x = λ·B·x;  2: A·B·x = λ·x;  3: B·A·x = λ·x.
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	fullA := symFull(uplo, n, a, n)
	fullB := symFull(uplo, n, b, n)
	for j := 0; j < n; j++ {
		x := af[j*n : j*n+n]
		lhs := make([]T, n)
		rhs := make([]T, n)
		switch itype {
		case 1:
			blas.Gemv(tcfg(), blas.NoTrans, n, n, one, fullA, n, x, 1, zero, lhs, 1)
			blas.Gemv(tcfg(), blas.NoTrans, n, n, core.FromFloat[T](w[j]), fullB, n, x, 1, zero, rhs, 1)
		case 2:
			tmp := make([]T, n)
			blas.Gemv(tcfg(), blas.NoTrans, n, n, one, fullB, n, x, 1, zero, tmp, 1)
			blas.Gemv(tcfg(), blas.NoTrans, n, n, one, fullA, n, tmp, 1, zero, lhs, 1)
			blas.Axpy(n, core.FromFloat[T](w[j]), x, 1, rhs, 1)
		case 3:
			tmp := make([]T, n)
			blas.Gemv(tcfg(), blas.NoTrans, n, n, one, fullA, n, x, 1, zero, tmp, 1)
			blas.Gemv(tcfg(), blas.NoTrans, n, n, one, fullB, n, tmp, 1, zero, lhs, 1)
			blas.Axpy(n, core.FromFloat[T](w[j]), x, 1, rhs, 1)
		}
		res := 0.0
		scale := 0.0
		for i := 0; i < n; i++ {
			res = math.Max(res, core.Abs(lhs[i]-rhs[i]))
			scale = math.Max(scale, core.Abs(lhs[i]))
		}
		if res > 1e-9*float64(n)*(1+scale)*(1+math.Abs(w[j])) {
			t.Fatalf("itype=%d uplo=%v n=%d pair %d residual %v (λ=%v)", itype, uplo, n, j, res, w[j])
		}
	}
}

func TestSygv(t *testing.T) {
	for _, itype := range []int{1, 2, 3} {
		for _, uplo := range []lapack.Uplo{lapack.Upper, lapack.Lower} {
			for _, n := range []int{1, 2, 6, 15} {
				t.Run("float64", func(t *testing.T) { testSygv[float64](t, itype, uplo, n) })
				t.Run("complex128", func(t *testing.T) { testSygv[complex128](t, itype, uplo, n) })
			}
		}
	}
}

func TestSygvNotPD(t *testing.T) {
	n := 3
	a := randSym[float64](lapack.NewRng([4]int{1, 2, 3, 4}), n, n)
	b := make([]float64, n*n)
	b[0], b[1+n], b[2+2*n] = 1, -1, 1 // indefinite B
	w := make([]float64, n)
	if info := lapack.Sygv(tcfg(), 1, false, lapack.Upper, n, a, n, b, n, w); info != n+2 {
		t.Fatalf("info=%d, want %d", info, n+2)
	}
}

func TestSpgvSbgv(t *testing.T) {
	n := 10
	rng := lapack.NewRng([4]int{5, 4, 3, 2})
	a := randSym[float64](rng, n, n)
	b := testutil.RandSPD[float64](rng, n, n)
	// Reference via dense Sygv.
	aRef := append([]float64(nil), a...)
	bRef := append([]float64(nil), b...)
	wRef := make([]float64, n)
	lapack.Sygv(tcfg(), 1, false, lapack.Upper, n, aRef, n, bRef, n, wRef)

	ap := packTri(lapack.Upper, n, a, n)
	bp := packTri(lapack.Upper, n, b, n)
	w := make([]float64, n)
	z := make([]float64, n*n)
	if info := lapack.Spgv(tcfg(), 1, true, lapack.Upper, n, ap, bp, w, z, n); info != 0 {
		t.Fatalf("spgv info=%d", info)
	}
	for i := range w {
		if math.Abs(w[i]-wRef[i]) > 1e-10*(1+math.Abs(wRef[i])) {
			t.Fatalf("spgv w[%d]=%v want %v", i, w[i], wRef[i])
		}
	}

	// Banded problem: make A and B banded SPD-ish.
	kd := 2
	ab := make([]float64, (kd+1)*n)
	bb := make([]float64, (kd+1)*n)
	for j := 0; j < n; j++ {
		ab[kd+j*(kd+1)] = 4 + rng.Uniform()
		bb[kd+j*(kd+1)] = 3 + rng.Uniform()
		for i := max(0, j-kd); i < j; i++ {
			ab[kd+i-j+j*(kd+1)] = rng.Uniform11() * 0.5
			bb[kd+i-j+j*(kd+1)] = rng.Uniform11() * 0.3
		}
	}
	wb := make([]float64, n)
	zb := make([]float64, n*n)
	if info := lapack.Sbgv(tcfg(), true, lapack.Upper, n, kd, kd, ab, kd+1, bb, kd+1, wb, zb, n); info != 0 {
		t.Fatalf("sbgv info=%d", info)
	}
	// Spot-check the generalized residual for the extreme pair.
	fullA := expandFull(lapack.Upper, n, kd, ab, kd+1)
	fullB := expandFull(lapack.Upper, n, kd, bb, kd+1)
	for _, j := range []int{0, n - 1} {
		res := 0.0
		for i := 0; i < n; i++ {
			var sa, sb float64
			for k := 0; k < n; k++ {
				sa += fullA[i+k*n] * zb[k+j*n]
				sb += fullB[i+k*n] * zb[k+j*n]
			}
			res = math.Max(res, math.Abs(sa-wb[j]*sb))
		}
		if res > 1e-10*float64(n)*(1+math.Abs(wb[j])) {
			t.Fatalf("sbgv pair %d residual %v", j, res)
		}
	}
}

func expandFull(uplo lapack.Uplo, n, kd int, ab []float64, ldab int) []float64 {
	f := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := max(0, j-kd); i <= j; i++ {
			v := ab[kd+i-j+j*ldab]
			f[i+j*n] = v
			f[j+i*n] = v
		}
	}
	return f
}

func TestSpevSbev(t *testing.T) {
	n := 12
	rng := lapack.NewRng([4]int{6, 5, 4, 3})
	a := randHerm[complex128](rng, n, n)
	// Dense reference.
	aRef := append([]complex128(nil), a...)
	wRef := make([]float64, n)
	lapack.Syev[complex128](tcfg(), false, lapack.Upper, n, aRef, n, wRef)

	ap := packTri(lapack.Upper, n, a, n)
	w := make([]float64, n)
	z := make([]complex128, n*n)
	if info := lapack.Spev(tcfg(), true, lapack.Upper, n, ap, w, z, n); info != 0 {
		t.Fatalf("spev info=%d", info)
	}
	for i := range w {
		if math.Abs(w[i]-wRef[i]) > 1e-10*(1+math.Abs(wRef[i])) {
			t.Fatalf("spev w[%d]=%v want %v", i, w[i], wRef[i])
		}
	}
	if r := testutil.OrthoResidual(n, n, z, n); r > thresh {
		t.Fatalf("spev eigvec orthogonality %v", r)
	}
	// Spevx on an index range agrees with the full spectrum.
	ap2 := packTri(lapack.Upper, n, a, n)
	zx := make([]complex128, n*3)
	res := lapack.Spevx(tcfg(), true, lapack.RangeIndex, lapack.Upper, n, ap2, 0, 0, 2, 4, 0, zx, n)
	if res.M != 3 {
		t.Fatalf("spevx m=%d", res.M)
	}
	for k := 0; k < 3; k++ {
		if math.Abs(res.W[k]-wRef[k+1]) > 1e-8*(1+math.Abs(wRef[k+1])) {
			t.Fatalf("spevx w[%d]=%v want %v", k, res.W[k], wRef[k+1])
		}
	}

	// Band path against dense on a banded Hermitian matrix.
	kd := 3
	ldab := kd + 1
	ab := make([]complex128, ldab*n)
	dense := make([]complex128, n*n)
	for j := 0; j < n; j++ {
		ab[kd+j*ldab] = complex(2+rng.Uniform(), 0)
		dense[j+j*n] = ab[kd+j*ldab]
		for i := max(0, j-kd); i < j; i++ {
			v := complex(rng.Uniform11(), rng.Uniform11())
			ab[kd+i-j+j*ldab] = v
			dense[i+j*n] = v
			dense[j+i*n] = core.Conj(v)
		}
	}
	wRefB := make([]float64, n)
	dRef := append([]complex128(nil), dense...)
	lapack.Syev[complex128](tcfg(), false, lapack.Upper, n, dRef, n, wRefB)
	wb := make([]float64, n)
	zb := make([]complex128, n*n)
	if info := lapack.Sbev(tcfg(), true, lapack.Upper, n, kd, ab, ldab, wb, zb, n); info != 0 {
		t.Fatalf("sbev info=%d", info)
	}
	for i := range wb {
		if math.Abs(wb[i]-wRefB[i]) > 1e-10*(1+math.Abs(wRefB[i])) {
			t.Fatalf("sbev w[%d]=%v want %v", i, wb[i], wRefB[i])
		}
	}
}
