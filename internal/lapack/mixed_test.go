package lapack_test

// Tests for the mixed-precision iterative-refinement solvers
// (GesvMixed/PosvMixed): convergence to the float64 backward-error class on
// well-conditioned systems, bit-identity of every fallback path with the
// plain drivers, the non-finite screens (bounded termination on NaN/Inf
// input, per the PR-3 fault model), and the ITERMAX knob.

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
)

// mixedWellCond builds a well-conditioned n×n system: Larnv entries with
// the diagonal shifted by n.
func mixedWellCond[T core.Scalar](seed, n, nrhs int) (a, b []T) {
	rng := lapack.NewRng([4]int{seed, 11, 13, 1})
	a = make([]T, n*n)
	b = make([]T, n*nrhs)
	lapack.Larnv(2, rng, n*n, a)
	lapack.Larnv(2, rng, n*nrhs, b)
	for i := 0; i < n; i++ {
		a[i+i*n] += core.FromFloat[T](float64(n))
	}
	return a, b
}

// mixedBackwardError returns max_j ‖b_j−A·x_j‖∞/(‖A‖∞·‖x_j‖∞).
func mixedBackwardError[T core.Scalar](n, nrhs int, a, b, x []T) float64 {
	r := append([]T(nil), b[:n*nrhs]...)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, n, nrhs, n,
		core.FromFloat[T](-1), a, n, x, n, core.FromFloat[T](1), r, n)
	anrm := lapack.Lange(lapack.InfNorm, n, n, a, n)
	worst := 0.0
	for j := 0; j < nrhs; j++ {
		rn := lapack.Lange(lapack.MaxAbs, n, 1, r[j*n:j*n+n], n)
		xn := lapack.Lange(lapack.MaxAbs, n, 1, x[j*n:j*n+n], n)
		if be := rn / (anrm * xn); be > worst {
			worst = be
		}
	}
	return worst
}

// bitsEqual compares two slices bit for bit (NaN payloads included), so
// fallback results can be checked for exact identity with the plain driver
// even on poisoned inputs.
func bitsEqual[T core.Scalar](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	eq64 := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	for i := range a {
		if !eq64(core.Re(a[i]), core.Re(b[i])) || !eq64(core.Im(a[i]), core.Im(b[i])) {
			return false
		}
	}
	return true
}

func testGesvMixedConverges[T lapack.MixedScalar](t *testing.T, n, nrhs int) {
	t.Helper()
	a, b := mixedWellCond[T](n+nrhs, n, nrhs)
	a0 := append([]T(nil), a...)
	b0 := append([]T(nil), b...)
	x := make([]T, n*nrhs)
	ipiv := make([]int, n)
	iter, info := lapack.GesvMixed(tcfg(), n, nrhs, a, n, ipiv, b, n, x, n)
	if info != 0 {
		t.Fatalf("info = %d", info)
	}
	if iter < 0 {
		t.Fatalf("well-conditioned system fell back: iter = %d", iter)
	}
	if !bitsEqual(a, a0) || !bitsEqual(b, b0) {
		t.Fatal("converged mixed solve must leave a and b unchanged")
	}
	cte := float64(n) * core.EpsDouble
	if be := mixedBackwardError(n, nrhs, a, b, x); be > 2*cte {
		t.Fatalf("backward error %.3e beyond n·eps64 class (%.3e)", be, cte)
	}
}

func TestGesvMixedConverges(t *testing.T) {
	for _, sz := range [][2]int{{1, 1}, {7, 2}, {50, 1}, {120, 3}, {200, 2}} {
		testGesvMixedConverges[float64](t, sz[0], sz[1])
		testGesvMixedConverges[complex128](t, sz[0], sz[1])
	}
}

func testPosvMixedConverges[T lapack.MixedScalar](t *testing.T, uplo lapack.Uplo, n, nrhs int) {
	t.Helper()
	g, b := mixedWellCond[T](3*n+nrhs, n, nrhs)
	// Hermitian positive definite: G·Gᴴ + n·I.
	a := make([]T, n*n)
	blas.Gemm(tcfg(), blas.NoTrans, blas.ConjTrans, n, n, n, core.FromFloat[T](1), g, n, g, n, core.FromFloat[T](0), a, n)
	for i := 0; i < n; i++ {
		a[i+i*n] = core.FromFloat[T](core.Re(a[i+i*n]) + float64(n))
	}
	a0 := append([]T(nil), a...)
	x := make([]T, n*nrhs)
	iter, info := lapack.PosvMixed(tcfg(), uplo, n, nrhs, a, n, b, n, x, n)
	if info != 0 {
		t.Fatalf("info = %d", info)
	}
	if iter < 0 {
		t.Fatalf("well-conditioned HPD system fell back: iter = %d", iter)
	}
	if !bitsEqual(a, a0) {
		t.Fatal("converged mixed solve must leave a unchanged")
	}
	cte := float64(n) * core.EpsDouble
	if be := mixedBackwardError(n, nrhs, a, b, x); be > 2*cte {
		t.Fatalf("backward error %.3e beyond n·eps64 class (%.3e)", be, cte)
	}
}

func TestPosvMixedConverges(t *testing.T) {
	for _, uplo := range []lapack.Uplo{lapack.Upper, lapack.Lower} {
		for _, sz := range [][2]int{{9, 2}, {80, 1}, {150, 3}} {
			testPosvMixedConverges[float64](t, uplo, sz[0], sz[1])
			testPosvMixedConverges[complex128](t, uplo, sz[0], sz[1])
		}
	}
}

// expectGesvFallbackIdentity runs GesvMixed expecting a fallback (reason
// wantIter, or any negative reason when wantIter is 0) and checks the
// delivered solution, factors, and pivots are bit-identical to the plain
// Gesv on the same inputs.
func expectGesvFallbackIdentity[T lapack.MixedScalar](t *testing.T, n, nrhs int, a, b []T, wantIter int) {
	t.Helper()
	aM := append([]T(nil), a...)
	bM := append([]T(nil), b...)
	x := make([]T, n*nrhs)
	ipivM := make([]int, n)
	iter, infoM := lapack.GesvMixed(tcfg(), n, nrhs, aM, n, ipivM, bM, n, x, n)
	if iter >= 0 {
		t.Fatalf("expected fallback, got convergence in %d sweeps", iter)
	}
	if wantIter != 0 && iter != wantIter {
		t.Fatalf("fallback reason %d, want %d", iter, wantIter)
	}
	aP := append([]T(nil), a...)
	bP := append([]T(nil), b...)
	ipivP := make([]int, n)
	infoP := lapack.Gesv(tcfg(), n, nrhs, aP, n, ipivP, bP, n)
	if infoM != infoP {
		t.Fatalf("fallback info %d, plain info %d", infoM, infoP)
	}
	if infoP == 0 && !bitsEqual(x, bP) {
		t.Fatal("fallback solution not bit-identical to plain Gesv")
	}
	if !bitsEqual(aM, aP) {
		t.Fatal("fallback factors not bit-identical to plain Gesv")
	}
	for i := range ipivM {
		if infoP == 0 && ipivM[i] != ipivP[i] {
			t.Fatalf("fallback pivots differ at %d", i)
		}
	}
	if !bitsEqual(bM, b) {
		t.Fatal("b must be preserved")
	}
}

// TestGesvMixedStallFallback forces the stall path deterministically: with
// ITERMAX = 1 a large system cannot pass the convergence test (the first
// residual checks miss by orders of magnitude), so the engine must fall
// back, bit-identical to the plain driver.
func TestGesvMixedStallFallback(t *testing.T) {
	old := lapack.SetMixedIterMax(1)
	defer lapack.SetMixedIterMax(old)
	a, b := mixedWellCond[float64](5, 100, 2)
	expectGesvFallbackIdentity(t, 100, 2, a, b, lapack.MixedFallbackStalled)
	ac, bc := mixedWellCond[complex128](5, 100, 2)
	expectGesvFallbackIdentity(t, 100, 2, ac, bc, lapack.MixedFallbackStalled)
}

// TestGesvMixedIllConditioned: condition number far beyond what float32
// resolves — two columns at unit scale differing by 1e-10, so the demotion
// loses the distinction entirely and refinement cannot contract (a row
// scaling would not do: it leaves the normwise criterion trivially
// satisfiable). The engine must fall back — reason is Stalled or Singular
// depending on what the float32 factorization makes of the collapsed
// columns — and still deliver the plain driver's bits.
func TestGesvMixedIllConditioned(t *testing.T) {
	n := 60
	a, b := mixedWellCond[float64](9, n, 1)
	for i := 0; i < n; i++ {
		a[i+2*n] = a[i+n] + 1e-10*float64(i%7-3)
	}
	expectGesvFallbackIdentity(t, n, 1, a, b, 0)
}

// TestGesvMixedSingular: an exactly rank-deficient matrix (zero column)
// fails the float32 factorization; the float64 fallback reports the
// singularity exactly as the plain driver does.
func TestGesvMixedSingular(t *testing.T) {
	n := 40
	a, b := mixedWellCond[float64](13, n, 1)
	clear(a[2*n : 3*n]) // column 2 := 0
	aM := append([]float64(nil), a...)
	x := make([]float64, n)
	iter, info := lapack.GesvMixed(tcfg(), n, 1, aM, n, make([]int, n), b, n, x, n)
	if iter >= 0 {
		t.Fatalf("singular system converged? iter=%d", iter)
	}
	aP := append([]float64(nil), a...)
	bP := append([]float64(nil), b...)
	infoP := lapack.Gesv(tcfg(), n, 1, aP, n, make([]int, n), bP, n)
	if infoP == 0 {
		t.Fatal("oracle: plain Gesv did not report singularity")
	}
	if info != infoP {
		t.Fatalf("fallback info %d, plain info %d", info, infoP)
	}
}

// TestMixedChaosNonFinite soaks the solvers in NaN/Inf/overflow-range
// poison (the PR-3 fault model): every case must terminate well inside the
// sweep bound — the screens abort on first sight of a non-finite value —
// and fall back to the plain driver's exact bits.
func TestMixedChaosNonFinite(t *testing.T) {
	n := 48
	poisons := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -4e38}
	for pi, p := range poisons {
		for _, loc := range []string{"a-first", "a-mid", "b"} {
			a, b := mixedWellCond[float64](pi+21, n, 2)
			switch loc {
			case "a-first":
				a[0] = p
			case "a-mid":
				a[(n/2)+(n/2)*n] = p
			case "b":
				b[n+3] = p
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				expectGesvFallbackIdentity(t, n, 2, a, b, lapack.MixedFallbackNonFinite)
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("poison %v at %s: mixed solve did not terminate", p, loc)
			}
		}
	}
	// Same screens on the Cholesky route.
	g, b := mixedWellCond[float64](31, n, 1)
	hpd := make([]float64, n*n)
	blas.Gemm(tcfg(), blas.NoTrans, blas.ConjTrans, n, n, n, 1.0, g, n, g, n, 0.0, hpd, n)
	for i := 0; i < n; i++ {
		hpd[i+i*n] += float64(n)
	}
	hpd[1+0*n] = math.NaN() // lower triangle
	aM := append([]float64(nil), hpd...)
	x := make([]float64, n)
	iter, _ := lapack.PosvMixed(tcfg(), lapack.Lower, n, 1, aM, n, b, n, x, n)
	if iter != lapack.MixedFallbackNonFinite {
		t.Fatalf("PosvMixed on NaN input: iter=%d, want %d", iter, lapack.MixedFallbackNonFinite)
	}
}

// TestSetMixedIterMax checks the knob's clamp-and-swap contract.
func TestSetMixedIterMax(t *testing.T) {
	orig := lapack.MixedIterMax()
	defer lapack.SetMixedIterMax(orig)
	if old := lapack.SetMixedIterMax(5); old != orig {
		t.Fatalf("swap returned %d, want %d", old, orig)
	}
	if got := lapack.MixedIterMax(); got != 5 {
		t.Fatalf("MixedIterMax = %d, want 5", got)
	}
	// n < 1 leaves the setting unchanged.
	if lapack.SetMixedIterMax(0); lapack.MixedIterMax() != 5 {
		t.Fatal("SetMixedIterMax(0) must not change the bound")
	}
	// Huge values clamp to the internal cap.
	lapack.SetMixedIterMax(1 << 30)
	if got := lapack.MixedIterMax(); got != 1<<12 {
		t.Fatalf("clamped bound = %d, want %d", got, 1<<12)
	}
}

// TestMixedIterMaxEnvKnob re-executes the test binary with
// LA90_MIXED_ITERMAX set (read once at init) and checks the override lands,
// including core.EnvInt's clamping: out-of-range values degrade to the
// nearest bound and garbage keeps the default.
func TestMixedIterMaxEnvKnob(t *testing.T) {
	if os.Getenv("LA90_MIXED_HELPER") == "1" {
		fmt.Printf("MIXEDMAX %d\n", lapack.MixedIterMax())
		return
	}
	cases := []struct {
		env  string
		want int
	}{
		{"7", 7},
		{"1", 1},
		{"0", 1},           // below the minimum of one sweep
		{"99999999", 4096}, // above the internal cap
		{"banana", 30},     // garbage keeps the default
	}
	for _, c := range cases {
		cmd := exec.Command(os.Args[0], "-test.run", "TestMixedIterMaxEnvKnob$", "-test.v")
		cmd.Env = append(os.Environ(), "LA90_MIXED_HELPER=1", "LA90_MIXED_ITERMAX="+c.env)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("helper process failed: %v\n%s", err, out)
		}
		got := -1
		for _, line := range strings.Split(string(out), "\n") {
			if strings.HasPrefix(line, "MIXEDMAX ") {
				fmt.Sscanf(line, "MIXEDMAX %d", &got)
			}
		}
		if got != c.want {
			t.Errorf("LA90_MIXED_ITERMAX=%q: got %d, want %d", c.env, got, c.want)
		}
	}
}

// TestGesvMixedRcondScreen: a matrix whose float32 factorization succeeds
// cleanly (graded column, all entries representable) but whose condition
// number is far beyond the refinement contraction bound. Before the rcond
// screen this input burned all ITERMAX sweeps before stalling; now Gecon on
// the float32 factors must reject it up front — reason IllConditioned, not
// Stalled — and deliver the plain driver's bits. ITERMAX is raised so a
// stall (if the screen failed) would show up as the wrong reason code.
func TestGesvMixedRcondScreen(t *testing.T) {
	old := lapack.SetMixedIterMax(64)
	defer lapack.SetMixedIterMax(old)
	n := 50
	a, b := mixedWellCond[float64](21, n, 2)
	for i := 0; i < n; i++ { // grade one column: cond ≈ 1e9, exact in f32
		a[i+3*n] *= 1e-9
	}
	expectGesvFallbackIdentity(t, n, 2, a, b, lapack.MixedFallbackIllConditioned)
	ac, bc := mixedWellCond[complex128](21, n, 2)
	for i := 0; i < n; i++ {
		ac[i+3*n] *= 1e-9
	}
	expectGesvFallbackIdentity(t, n, 2, ac, bc, lapack.MixedFallbackIllConditioned)
}

// TestPosvMixedRcondScreen is the Cholesky-route twin: an SPD matrix with a
// graded spectrum (diagonal 1e-9..1, factors exactly in float32) must trip
// the Pocon screen and fall back bit-identically to plain Posv.
func TestPosvMixedRcondScreen(t *testing.T) {
	old := lapack.SetMixedIterMax(64)
	defer lapack.SetMixedIterMax(old)
	n := 32
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		d := 1.0
		if i == 0 {
			d = 1e-9
		}
		a[i+i*n] = d
	}
	// Couple the graded mode to the rest so the matrix is not diagonal.
	for i := 1; i < n; i++ {
		a[0+i*n] = 1e-6
		a[i+0*n] = 1e-6
	}
	_, b := mixedWellCond[float64](23, n, 1)
	for _, uplo := range []lapack.Uplo{lapack.Upper, lapack.Lower} {
		aM := append([]float64(nil), a...)
		bM := append([]float64(nil), b...)
		x := make([]float64, n)
		iter, infoM := lapack.PosvMixed(tcfg(), uplo, n, 1, aM, n, bM, n, x, n)
		if iter != lapack.MixedFallbackIllConditioned {
			t.Fatalf("uplo=%c iter=%d, want %d", uplo, iter, lapack.MixedFallbackIllConditioned)
		}
		aP := append([]float64(nil), a...)
		bP := append([]float64(nil), b...)
		infoP := lapack.Posv(tcfg(), uplo, n, 1, aP, n, bP, n)
		if infoM != infoP {
			t.Fatalf("uplo=%c fallback info %d, plain info %d", uplo, infoM, infoP)
		}
		if !bitsEqual(x, bP) {
			t.Fatalf("uplo=%c fallback solution not bit-identical to plain Posv", uplo)
		}
		if !bitsEqual(aM, aP) {
			t.Fatalf("uplo=%c fallback factors not bit-identical to plain Posv", uplo)
		}
		if !bitsEqual(bM, b) {
			t.Fatalf("uplo=%c b must be preserved", uplo)
		}
	}
}
