package lapack

import (
	"math"
	"math/cmplx"

	"repro/internal/core"
)

// lasy2g solves the small Sylvester equation TL·X + isgn·X·TR = B for
// n1×n2 blocks with n1, n2 ∈ {1, 2} (the general-sign xLASY2), by the same
// Kronecker assembly as lasy2.
func lasy2g(cfg *core.Config, isgn int, n1, n2 int, tl []float64, ldtl int, tr []float64, ldtr int, b []float64, ldb int) (x [4]float64, xnorm float64) {
	nn := n1 * n2
	var m [16]float64
	var rhs [4]float64
	sg := float64(isgn)
	for j := 0; j < n2; j++ {
		for i := 0; i < n1; i++ {
			row := i + j*n1
			rhs[row] = b[i+j*ldb]
			for l := 0; l < n2; l++ {
				for k := 0; k < n1; k++ {
					col := k + l*n1
					v := 0.0
					if j == l {
						v += tl[i+k*ldtl]
					}
					if i == k {
						v += sg * tr[l+j*ldtr]
					}
					m[row+col*nn] += v
				}
			}
		}
	}
	mnorm := 0.0
	for i := 0; i < nn*nn; i++ {
		mnorm = math.Max(mnorm, math.Abs(m[i]))
	}
	smin := math.Max(core64eps*mnorm, math.SmallestNonzeroFloat64*0x1p52)
	ipiv := make([]int, nn)
	if info := Getrf(cfg, nn, nn, m[:nn*nn], nn, ipiv); info != 0 {
		k := info - 1
		m[k+k*nn] = smin
	}
	Getrs(cfg, NoTrans, nn, 1, m[:nn*nn], nn, ipiv, rhs[:nn], nn)
	for i := 0; i < nn; i++ {
		x[i] = rhs[i]
		xnorm = math.Max(xnorm, math.Abs(rhs[i]))
	}
	return x, xnorm
}

// schurBlocks returns the starting indices of the diagonal blocks of a
// real quasi-triangular matrix.
func schurBlocks(n int, t []float64, ldt int) []int {
	var starts []int
	for i := 0; i < n; {
		starts = append(starts, i)
		if i < n-1 && t[i+1+i*ldt] != 0 {
			i += 2
		} else {
			i++
		}
	}
	return starts
}

// Trsyl solves the real quasi-triangular Sylvester equation
//
//	op(A)·X + isgn·X·op(B) = C
//
// for X (m×n), where A (m×m) and B (n×n) are upper quasi-triangular Schur
// forms and op is the identity (trans false) or the transpose (trans true,
// applied to both A and B as xTRSEN requires) (xTRSYL). C is overwritten
// by X. The solve is blockwise with the xLASY2 kernel; near-singular small
// systems are perturbed rather than scaled, so the scale factor of the
// reference interface is always reported as 1 (see DESIGN.md).
func Trsyl(cfg *core.Config, trans bool, isgn, m, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) float64 {
	if m == 0 || n == 0 {
		return 1
	}
	ab := schurBlocks(m, a, lda)
	bb := schurBlocks(n, b, ldb)
	sg := float64(isgn)
	blockSize := func(starts []int, idx, n int) int {
		if idx == len(starts)-1 {
			return n - starts[idx]
		}
		return starts[idx+1] - starts[idx]
	}
	if !trans {
		// A·X + isgn·X·B = C: K from bottom to top, L from left to right.
		for li := 0; li < len(bb); li++ {
			l1 := bb[li]
			l2 := l1 + blockSize(bb, li, n) // exclusive
			for ki := len(ab) - 1; ki >= 0; ki-- {
				k1 := ab[ki]
				k2 := k1 + blockSize(ab, ki, m)
				// RHS block = C(K,L) − A(K, K2:)·X(K2:, L) − isgn·X(K, :L1)·B(:L1, L).
				var rhs [4]float64
				for j := l1; j < l2; j++ {
					for i := k1; i < k2; i++ {
						s := c[i+j*ldc]
						for p := k2; p < m; p++ {
							s -= a[i+p*lda] * c[p+j*ldc]
						}
						for q := 0; q < l1; q++ {
							s -= sg * c[i+q*ldc] * b[q+j*ldb]
						}
						rhs[(i-k1)+(j-l1)*(k2-k1)] = s
					}
				}
				x, _ := lasy2g(cfg, isgn, k2-k1, l2-l1, a[k1+k1*lda:], lda, b[l1+l1*ldb:], ldb, rhs[:], k2-k1)
				for j := l1; j < l2; j++ {
					for i := k1; i < k2; i++ {
						c[i+j*ldc] = x[(i-k1)+(j-l1)*(k2-k1)]
					}
				}
			}
		}
		return 1
	}
	// Aᵀ·X + isgn·X·Bᵀ = C: K from top to bottom, L from right to left.
	for li := len(bb) - 1; li >= 0; li-- {
		l1 := bb[li]
		l2 := l1 + blockSize(bb, li, n)
		for ki := 0; ki < len(ab); ki++ {
			k1 := ab[ki]
			k2 := k1 + blockSize(ab, ki, m)
			var rhs [4]float64
			for j := l1; j < l2; j++ {
				for i := k1; i < k2; i++ {
					s := c[i+j*ldc]
					for p := 0; p < k1; p++ {
						s -= a[p+i*lda] * c[p+j*ldc]
					}
					for q := l2; q < n; q++ {
						s -= sg * c[i+q*ldc] * b[j+q*ldb]
					}
					rhs[(i-k1)+(j-l1)*(k2-k1)] = s
				}
			}
			// Transposed diagonal blocks.
			var tlt, trt [4]float64
			nk := k2 - k1
			nl := l2 - l1
			for i := 0; i < nk; i++ {
				for j := 0; j < nk; j++ {
					tlt[i+j*nk] = a[k1+j+(k1+i)*lda]
				}
			}
			for i := 0; i < nl; i++ {
				for j := 0; j < nl; j++ {
					trt[i+j*nl] = b[l1+j+(l1+i)*ldb]
				}
			}
			x, _ := lasy2g(cfg, isgn, nk, nl, tlt[:], nk, trt[:], nl, rhs[:], nk)
			for j := l1; j < l2; j++ {
				for i := k1; i < k2; i++ {
					c[i+j*ldc] = x[(i-k1)+(j-l1)*nk]
				}
			}
		}
	}
	return 1
}

// TrsylC solves the complex triangular Sylvester equation
// op(A)·X + isgn·X·op(B) = C with upper triangular A (m×m) and B (n×n);
// op is the identity or the conjugate transpose. C is overwritten by X.
func TrsylC(conjTrans bool, isgn, m, n int, a []complex128, lda int, b []complex128, ldb int, c []complex128, ldc int) float64 {
	if m == 0 || n == 0 {
		return 1
	}
	sg := complex(float64(isgn), 0)
	smin := math.SmallestNonzeroFloat64 * 0x1p52
	guard := func(d complex128) complex128 {
		if cmplx.Abs(d) < smin {
			return complex(smin, 0)
		}
		return d
	}
	if !conjTrans {
		for l := 0; l < n; l++ {
			for k := m - 1; k >= 0; k-- {
				s := c[k+l*ldc]
				for p := k + 1; p < m; p++ {
					s -= a[k+p*lda] * c[p+l*ldc]
				}
				for q := 0; q < l; q++ {
					s -= sg * c[k+q*ldc] * b[q+l*ldb]
				}
				c[k+l*ldc] = s / guard(a[k+k*lda]+sg*b[l+l*ldb])
			}
		}
		return 1
	}
	for l := n - 1; l >= 0; l-- {
		for k := 0; k < m; k++ {
			s := c[k+l*ldc]
			for p := 0; p < k; p++ {
				s -= cmplx.Conj(a[p+k*lda]) * c[p+l*ldc]
			}
			for q := l + 1; q < n; q++ {
				s -= sg * c[k+q*ldc] * cmplx.Conj(b[l+q*ldb])
			}
			c[k+l*ldc] = s / guard(cmplx.Conj(a[k+k*lda])+sg*cmplx.Conj(b[l+l*ldb]))
		}
	}
	return 1
}
