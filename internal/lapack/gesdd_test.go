package lapack_test

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/testutil"
)

// checkSVD verifies the standard SVD properties for a (possibly economy)
// factorization of the m×n matrix a: descending non-negative values, U/V
// orthogonality, and reconstruction.
func checkSVD[T core.Scalar](t *testing.T, m, n int, a []T, s []float64, u []T, ldu int, vt []T, ldvt int) {
	t.Helper()
	mn := min(m, n)
	for i := 0; i < mn; i++ {
		if s[i] < 0 {
			t.Fatalf("negative singular value %v", s[i])
		}
		if i > 0 && s[i] > s[i-1]*(1+1e-12) {
			t.Fatalf("singular values not descending at %d", i)
		}
	}
	if r := testutil.OrthoResidual(m, mn, u, ldu); r > thresh {
		t.Fatalf("U orthogonality %v", r)
	}
	v := make([]T, n*mn)
	blas.ConjTransposeTo(mn, n, vt, ldvt, v, n)
	if r := testutil.OrthoResidual(n, mn, v, n); r > thresh {
		t.Fatalf("V orthogonality %v", r)
	}
	us := make([]T, m*mn)
	for j := 0; j < mn; j++ {
		sj := core.FromFloat[T](s[j])
		for i := 0; i < m; i++ {
			us[i+j*m] = u[i+j*ldu] * sj
		}
	}
	rec := make([]T, m*n)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, m, n, mn, core.FromFloat[T](1), us, m, vt, ldvt, core.FromFloat[T](0), rec, m)
	if d := testutil.MaxDiff(rec, a); d > 1e4*float64(max(m, n))*core.Eps[T]()*math.Max(1, s[0]) {
		t.Fatalf("SVD reconstruction diff %v", d)
	}
}

// testGesdd drives Gesdd on a random m×n matrix and cross-checks the
// spectrum against the QR-iteration Gesvd on the same input.
func testGesdd[T core.Scalar](t *testing.T, m, n int) {
	t.Helper()
	rng := lapack.NewRng([4]int{m, n, 91, 92})
	a := testutil.RandGeneral[T](rng, m, n, m)
	mn := min(m, n)
	sref := make([]float64, mn)
	aref := append([]T(nil), a...)
	if info := lapack.Gesvd[T](tcfg(), lapack.SVDNone, lapack.SVDNone, m, n, aref, m, sref, nil, 0, nil, 0); info != 0 {
		t.Fatalf("gesvd info=%d", info)
	}
	ac := append([]T(nil), a...)
	s := make([]float64, mn)
	u := make([]T, m*mn)
	vt := make([]T, mn*n)
	if info := lapack.Gesdd(tcfg(), lapack.SVDSome, lapack.SVDSome, m, n, ac, m, s, u, m, vt, mn); info != 0 {
		t.Fatalf("gesdd info=%d", info)
	}
	tol := 100 * float64(max(m, n)) * core.Eps[T]() * math.Max(1, sref[0])
	for i := 0; i < mn; i++ {
		if math.Abs(s[i]-sref[i]) > tol {
			t.Fatalf("s[%d]: dc=%v qr=%v", i, s[i], sref[i])
		}
	}
	checkSVD(t, m, n, a, s, u, m, vt, mn)
}

func TestGesdd(t *testing.T) {
	// Shapes covering the square path, the m ≥ 5n/3 QR-first path, the wide
	// LQ-mirror path, and moderately tall blocks below the crossover.
	for _, mn := range [][2]int{{1, 1}, {2, 2}, {5, 5}, {12, 7}, {7, 12}, {30, 30}, {40, 10}, {10, 40}, {64, 64}, {100, 24}} {
		t.Run("float64", func(t *testing.T) { testGesdd[float64](t, mn[0], mn[1]) })
		t.Run("complex128", func(t *testing.T) { testGesdd[complex128](t, mn[0], mn[1]) })
	}
	t.Run("float32", func(t *testing.T) { testGesdd[float32](t, 9, 6) })
	t.Run("float32tall", func(t *testing.T) { testGesdd[float32](t, 33, 8) })
	t.Run("complex64", func(t *testing.T) { testGesdd[complex64](t, 6, 9) })
}

func testGesddFull[T core.Scalar](t *testing.T, m, n int) {
	t.Helper()
	rng := lapack.NewRng([4]int{m, n, 19, 23})
	a := testutil.RandGeneral[T](rng, m, n, m)
	ac := append([]T(nil), a...)
	s := make([]float64, min(m, n))
	u := make([]T, m*m)
	vt := make([]T, n*n)
	if info := lapack.Gesdd(tcfg(), lapack.SVDAll, lapack.SVDAll, m, n, ac, m, s, u, m, vt, n); info != 0 {
		t.Fatalf("gesdd info=%d", info)
	}
	if r := testutil.OrthoResidual(m, m, u, m); r > thresh {
		t.Fatalf("full U orthogonality %v", r)
	}
	if r := testutil.OrthoResidual(n, n, vt, n); r > thresh {
		t.Fatalf("full VT orthogonality %v", r)
	}
	checkSVD(t, m, n, a, s, u, m, vt, n)
}

func TestGesddFull(t *testing.T) {
	for _, mn := range [][2]int{{8, 5}, {5, 8}, {40, 12}, {12, 40}, {16, 16}} {
		t.Run("float64", func(t *testing.T) { testGesddFull[float64](t, mn[0], mn[1]) })
		t.Run("complex128", func(t *testing.T) { testGesddFull[complex128](t, mn[0], mn[1]) })
	}
}

func TestGesddGraded(t *testing.T) {
	// Wide dynamic range: σ spanning ~15 decades must survive the squared
	// secular solve with relative accuracy in the dominant values.
	n := 40
	a := make([]float64, n*n)
	rng := lapack.NewRng([4]int{40, 1, 2, 3})
	q := testutil.RandGeneral[float64](rng, n, n, n)
	tauq := make([]float64, n)
	lapack.Geqrf(tcfg(), n, n, q, n, tauq)
	lapack.Orgqr(tcfg(), n, n, n, q, n, tauq)
	for j := 0; j < n; j++ {
		sj := math.Pow(10, -float64(j)*15/float64(n-1))
		for i := 0; i < n; i++ {
			a[i+j*n] = q[i+j*n] * sj
		}
	}
	ac := append([]float64(nil), a...)
	s := make([]float64, n)
	u := make([]float64, n*n)
	vt := make([]float64, n*n)
	if info := lapack.Gesdd(tcfg(), lapack.SVDSome, lapack.SVDSome, n, n, ac, n, s, u, n, vt, n); info != 0 {
		t.Fatalf("info=%d", info)
	}
	checkSVD(t, n, n, a, s, u, n, vt, n)
	for j := 0; j < n/2; j++ {
		want := math.Pow(10, -float64(j)*15/float64(n-1))
		if math.Abs(s[j]-want) > 1e-10*want+1e-14 {
			t.Fatalf("s[%d]=%v want %v", j, s[j], want)
		}
	}
}

func TestGesddRankDeficient(t *testing.T) {
	// Rank-3 tall matrix through the QR-first path: trailing σ must be ~0
	// and the factorization must still reconstruct.
	m, n, r := 50, 12, 3
	rng := lapack.NewRng([4]int{50, 12, 3, 1})
	uu := testutil.RandGeneral[float64](rng, m, r, m)
	vv := testutil.RandGeneral[float64](rng, r, n, r)
	a := make([]float64, m*n)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, m, n, r, 1, uu, m, vv, r, 0, a, m)
	ac := append([]float64(nil), a...)
	s := make([]float64, n)
	u := make([]float64, m*n)
	vt := make([]float64, n*n)
	if info := lapack.Gesdd(tcfg(), lapack.SVDSome, lapack.SVDSome, m, n, ac, m, s, u, m, vt, n); info != 0 {
		t.Fatalf("info=%d", info)
	}
	for i := r; i < n; i++ {
		if s[i] > 1e-10*s[0] {
			t.Fatalf("trailing s[%d]=%v not negligible (s0=%v)", i, s[i], s[0])
		}
	}
	checkSVD(t, m, n, a, s, u, m, vt, n)
}

func TestGesddClustered(t *testing.T) {
	// Deflation-heavy: tightly clustered singular values.
	n := 48
	rng := lapack.NewRng([4]int{48, 7, 7, 7})
	q := testutil.RandGeneral[float64](rng, n, n, n)
	tauq := make([]float64, n)
	lapack.Geqrf(tcfg(), n, n, q, n, tauq)
	lapack.Orgqr(tcfg(), n, n, n, q, n, tauq)
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		sj := 2 + 1e-13*float64(j%3)
		for i := 0; i < n; i++ {
			a[i+j*n] = q[i+j*n] * sj
		}
	}
	ac := append([]float64(nil), a...)
	s := make([]float64, n)
	u := make([]float64, n*n)
	vt := make([]float64, n*n)
	if info := lapack.Gesdd(tcfg(), lapack.SVDSome, lapack.SVDSome, n, n, ac, n, s, u, n, vt, n); info != 0 {
		t.Fatalf("info=%d", info)
	}
	checkSVD(t, n, n, a, s, u, n, vt, n)
}

func testGelsd[T core.Scalar](t *testing.T, m, n int) {
	t.Helper()
	rng := lapack.NewRng([4]int{m, n, 77, 78})
	nrhs := 3
	a := testutil.RandGeneral[T](rng, m, n, m)
	ldb := max(m, n)
	b := make([]T, ldb*nrhs)
	for j := 0; j < nrhs; j++ {
		lapack.Larnv(2, rng, m, b[j*ldb:])
	}
	b0 := append([]T(nil), b...)
	ac := append([]T(nil), a...)
	s := make([]float64, min(m, n))
	rank, info := lapack.Gelsd(tcfg(), m, n, nrhs, ac, m, b, ldb, s, -1)
	if info != 0 {
		t.Fatalf("gelsd info=%d", info)
	}
	if rank != min(m, n) {
		t.Fatalf("rank=%d", rank)
	}
	one := core.FromFloat[T](1)
	for j := 0; j < nrhs; j++ {
		res := make([]T, m)
		copy(res, b0[j*ldb:j*ldb+m])
		blas.Gemv(tcfg(), blas.NoTrans, m, n, -one, a, m, b[j*ldb:], 1, one, res, 1)
		g := make([]T, n)
		blas.Gemv(tcfg(), blas.ConjTrans, m, n, one, a, m, res, 1, core.FromFloat[T](0), g, 1)
		if nrm := blas.Nrm2(n, g, 1); nrm > 2e5*core.Eps[T]() {
			t.Fatalf("gelsd normal equations %v", nrm)
		}
	}
}

func TestGelsd(t *testing.T) {
	for _, mn := range [][2]int{{10, 4}, {4, 10}, {8, 8}, {60, 9}} {
		t.Run("float64", func(t *testing.T) { testGelsd[float64](t, mn[0], mn[1]) })
		t.Run("complex128", func(t *testing.T) { testGelsd[complex128](t, mn[0], mn[1]) })
	}
	t.Run("float32", func(t *testing.T) { testGelsd[float32](t, 11, 5) })
	t.Run("complex64", func(t *testing.T) { testGelsd[complex64](t, 5, 11) })
}

func TestGelsdRankDeficient(t *testing.T) {
	// Rank-2 problem: Gelsd must agree with the pivoted-QR Gelsx solution.
	m, n, r := 9, 6, 2
	rng := lapack.NewRng([4]int{2, 9, 2, 9})
	uu := testutil.RandGeneral[float64](rng, m, r, m)
	vv := testutil.RandGeneral[float64](rng, r, n, r)
	a := make([]float64, m*n)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, m, n, r, 1, uu, m, vv, r, 0, a, m)
	b := make([]float64, max(m, n))
	lapack.Larnv(2, rng, m, b)

	ac := append([]float64(nil), a...)
	bsd := append([]float64(nil), b...)
	s := make([]float64, n)
	rank, info := lapack.Gelsd(tcfg(), m, n, 1, ac, m, bsd, max(m, n), s, 1e-8)
	if info != 0 || rank != r {
		t.Fatalf("gelsd rank=%d info=%d", rank, info)
	}
	ac2 := append([]float64(nil), a...)
	bsx := append([]float64(nil), b...)
	jpvt := make([]int, n)
	if rank2 := lapack.Gelsx(tcfg(), m, n, 1, ac2, m, jpvt, 1e-8, bsx, max(m, n)); rank2 != r {
		t.Fatalf("gelsx rank=%d", rank2)
	}
	for i := 0; i < n; i++ {
		if math.Abs(bsd[i]-bsx[i]) > 1e-8 {
			t.Fatalf("gelsd vs gelsx differ at %d: %v vs %v", i, bsd[i], bsx[i])
		}
	}
}
