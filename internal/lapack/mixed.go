package lapack

// Mixed-precision iterative-refinement solvers (the DSGESV/DSPOSV family,
// generalized over the repo's type pairs float64↔float32 and
// complex128↔complex64).
//
// The factorization — the O(n³) term — runs in the lower precision, riding
// the f32 GEMM kernels at roughly twice the f64 flop rate with half the
// memory traffic. Full precision is then recovered by iterative refinement
// in float64: each sweep computes the residual r = b − A·x with a float64
// GEMM (O(n²·nrhs)), solves A·d = r through the low-precision factors, and
// updates x += d. The iteration is declared converged when every right-hand
// side satisfies the backward-error criterion
//
//	‖r‖∞ ≤ ‖x‖∞ · ‖A‖∞ · n · eps64
//
// i.e. the computed x is the exact solution of a system perturbed by no
// more than n·eps64 in a normwise relative sense — the same accuracy class
// a full float64 factorization delivers.
//
// Fallback policy: the mixed path must never be less robust than the plain
// float64 driver, so the engine silently re-solves with the full float64
// factorization whenever the low-precision route cannot deliver —
//
//   - the demoted matrix or right-hand side is non-finite (a value beyond
//     float32 range demotes to ±Inf),
//   - the float32 factorization reports singularity (or a non-positive-
//     definite leading minor for PosvMixed) — condition beyond what f32
//     resolves,
//   - the Higham–Hager condition estimate off the float32 factors (Gecon/
//     Pocon, a few O(n²) solves) lands below the single-precision rcond
//     floor — refinement would stall, so fall back before iterating,
//   - a non-finite value appears in a residual or demoted correction
//     (consistent exception handling: NaN/Inf aborts the loop immediately
//     rather than iterating to the bound),
//   - the iteration hits its ITERMAX bound without converging (stall).
//
// The fallback performs exactly the operations of the plain driver on the
// same bits, so its results are bit-identical to Gesv/Posv. The iter return
// reports which path ran: ≥ 0 is the number of refinement sweeps the mixed
// path needed, < 0 is one of the MixedFallback* reason codes.

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// Mixed fallback reason codes, returned as the iter result of
// GesvMixed/PosvMixed when the low-precision route was abandoned and the
// answer was computed by the full float64 factorization instead.
const (
	// MixedFallbackSingular: the low-precision factorization failed
	// (singular U(i,i) for LU, non-PD leading minor for Cholesky).
	MixedFallbackSingular = -1
	// MixedFallbackNonFinite: a NaN or ±Inf appeared in the demoted
	// operands, a residual, or a demoted correction.
	MixedFallbackNonFinite = -2
	// MixedFallbackStalled: refinement did not converge within
	// MixedIterMax() sweeps.
	MixedFallbackStalled = -3
	// MixedFallbackIllConditioned: the condition estimate of the
	// low-precision factors says refinement cannot converge (rcond below
	// the single-precision floor), so the engine fell back immediately
	// instead of burning MixedIterMax() sweeps to discover the stall.
	MixedFallbackIllConditioned = -4
)

// mixedRcondFloorMul sets the rcond floor of the pre-refinement condition
// screen in multiples of the low precision's machine epsilon. Refinement
// through the low-precision factors contracts the error by roughly
// cond(A)·eps_low per sweep, so convergence to full precision within the
// sweep bound needs cond(A)·eps_low comfortably below 1; rcond estimates
// under 4·eps_low (cond above ~2·10⁶ in float32) are the stall region, and
// the Higham–Hager estimate is reliable to a small constant factor.
const mixedRcondFloorMul = 4

// MixedScalar constrains the element types that have a lower-precision
// partner to factor in: float64↔float32 and complex128↔complex64. The
// float32/complex64 families already are the low precision — a mixed solve
// has nothing to demote to, so the la layer routes them to the plain path.
type MixedScalar interface {
	float64 | complex128
}

// GesvMixed solves A·X = B for a general n×n float64 (complex128) matrix by
// factoring a float32 (complex64) demotion of A and refining in full
// precision — the xSGESV driver. Unlike Gesv, a and b are inputs: a is
// unchanged when the mixed path converges (iter ≥ 0) and holds the float64
// L·U factors after a fallback (iter < 0, exactly as Gesv would leave it);
// b is always preserved. The solution is written to x (n×nrhs, leading
// dimension ldx ≥ n). ipiv receives the pivots of whichever factorization
// produced x. info follows Gesv: 0 on success, i > 0 when the float64
// fallback also found U(i,i) exactly zero.
func GesvMixed[T MixedScalar](cfg *core.Config, n, nrhs int, a []T, lda int, ipiv []int, b []T, ldb int, x []T, ldx int) (iter, info int) {
	var z T
	switch any(z).(type) {
	case float64:
		return gesvMixedEngine[float64, float32](cfg, n, nrhs,
			any(a).([]float64), lda, ipiv, any(b).([]float64), ldb, any(x).([]float64), ldx)
	default:
		return gesvMixedEngine[complex128, complex64](cfg, n, nrhs,
			any(a).([]complex128), lda, ipiv, any(b).([]complex128), ldb, any(x).([]complex128), ldx)
	}
}

// PosvMixed is GesvMixed for symmetric/Hermitian positive definite systems
// (the xSPOSV driver): Cholesky in float32/complex64, refinement in full
// precision, fallback to the float64 Potrf. Only the uplo triangle of a is
// referenced; it is unchanged on the mixed path and holds the float64
// Cholesky factor after a fallback. info > 0 means the float64 fallback
// also found the leading minor of that order not positive definite.
func PosvMixed[T MixedScalar](cfg *core.Config, uplo Uplo, n, nrhs int, a []T, lda int, b []T, ldb int, x []T, ldx int) (iter, info int) {
	var z T
	switch any(z).(type) {
	case float64:
		return posvMixedEngine[float64, float32](cfg, uplo, n, nrhs,
			any(a).([]float64), lda, any(b).([]float64), ldb, any(x).([]float64), ldx)
	default:
		return posvMixedEngine[complex128, complex64](cfg, uplo, n, nrhs,
			any(a).([]complex128), lda, any(b).([]complex128), ldb, any(x).([]complex128), ldx)
	}
}

// demoteMat dispatches the m×n strided demotion H→L to the concrete
// conversion kernel for the type pair (one switch per call, contiguous
// unrolled inner loops).
func demoteMat[H, L core.Scalar](m, n int, src []H, lds int, dst []L, ldd int) {
	switch s := any(src).(type) {
	case []float64:
		blas.DemoteF64(m, n, s, lds, any(dst).([]float32), ldd)
	case []complex128:
		blas.DemoteC128(m, n, s, lds, any(dst).([]complex64), ldd)
	}
}

// promoteMat dispatches the m×n strided promotion L→H.
func promoteMat[L, H core.Scalar](m, n int, src []L, lds int, dst []H, ldd int) {
	switch s := any(src).(type) {
	case []float32:
		blas.PromoteF32(m, n, s, lds, any(dst).([]float64), ldd)
	case []complex64:
		blas.PromoteC64(m, n, s, lds, any(dst).([]complex128), ldd)
	}
}

// axpyPromote dispatches the fused y += promote(x) correction update.
func axpyPromote[L, H core.Scalar](n int, x []L, y []H) {
	switch xs := any(x).(type) {
	case []float32:
		blas.AxpyPromoteF32(n, xs, any(y).([]float64))
	case []complex64:
		blas.AxpyPromoteC64(n, xs, any(y).([]complex128))
	}
}

// colMaxAbs returns max_i |x_i| over a contiguous column in the |re|+|im|
// measure (the pivot metric, cheap for complex types); the convergence test
// only compares it against the same measure of the residual.
func colMaxAbs[T core.Scalar](x []T) float64 {
	v := 0.0
	for _, e := range x {
		if a := core.Abs1(e); a > v {
			v = a
		}
	}
	return v
}

// gesvMixedEngine is the shared H↔L implementation behind GesvMixed.
func gesvMixedEngine[H, L core.Scalar](cfg *core.Config, n, nrhs int, a []H, lda int, ipiv []int, b []H, ldb int, x []H, ldx int) (iter, info int) {
	if n == 0 {
		return 0, 0
	}
	// Demote and factor. The demoted buffer is screened before the
	// factorization: an element beyond narrow range became ±Inf, and
	// factoring it would only manufacture the non-finite residual the loop
	// below falls back on anyway. The real-type pair fuses the norm, the
	// demotion, and the screen into one pass over a; the complex pair keeps
	// the three separate sweeps.
	sa := blas.GetScratch[L](n * n)
	defer blas.PutScratch(sa)
	var anrm float64
	if ah, isF64 := any(a).([]float64); isF64 {
		saf := any(sa).([]float32)
		if !blas.DemoteScreenF64(n, n, ah, lda, saf, n) {
			return gesvMixedFallback(cfg, MixedFallbackNonFinite, n, nrhs, a, lda, ipiv, b, ldb, x, ldx)
		}
		// The ∞-norm comes off the demoted copy while it is cache-resident:
		// demotion rounds each element exactly, so the two norms agree to
		// one part in 2²⁴ — far inside the slack of an order-of-magnitude
		// convergence threshold — and the screen above has already ruled
		// out non-finite values.
		anrm = Lange(InfNorm, n, n, saf, n)
		if math.IsInf(anrm, 0) {
			return gesvMixedFallback(cfg, MixedFallbackNonFinite, n, nrhs, a, lda, ipiv, b, ldb, x, ldx)
		}
	} else {
		anrm = Lange(InfNorm, n, n, a, lda)
		if math.IsNaN(anrm) || math.IsInf(anrm, 0) {
			return gesvMixedFallback(cfg, MixedFallbackNonFinite, n, nrhs, a, lda, ipiv, b, ldb, x, ldx)
		}
		demoteMat(n, n, a, lda, sa, n)
		if !core.AllFinite(sa) {
			return gesvMixedFallback(cfg, MixedFallbackNonFinite, n, nrhs, a, lda, ipiv, b, ldb, x, ldx)
		}
	}
	if Getrf(cfg, n, n, sa, n, ipiv) != 0 {
		return gesvMixedFallback(cfg, MixedFallbackSingular, n, nrhs, a, lda, ipiv, b, ldb, x, ldx)
	}
	// Condition screen: estimate rcond off the factors just computed (a
	// handful of O(n²) triangular solves) and fall back now when the
	// estimate says the refinement loop below cannot contract the error to
	// full precision within its sweep bound.
	if rc := Gecon[L](cfg, InfNorm, n, sa, n, ipiv, anrm); rc < mixedRcondFloorMul*core.Eps[L]() {
		return gesvMixedFallback(cfg, MixedFallbackIllConditioned, n, nrhs, a, lda, ipiv, b, ldb, x, ldx)
	}
	solve := func(r []L) { Getrs(cfg, NoTrans, n, nrhs, sa, n, ipiv, r, n) }
	residual := func(r []H) {
		blas.Gemm(cfg, NoTrans, NoTrans, n, nrhs, n, core.FromFloat[H](-1), a, lda, x, ldx, core.FromFloat[H](1), r, n)
	}
	iter = mixedRefine(cfg, n, nrhs, anrm, b, ldb, x, ldx, solve, residual)
	if iter < 0 {
		return gesvMixedFallback(cfg, iter, n, nrhs, a, lda, ipiv, b, ldb, x, ldx)
	}
	return iter, 0
}

// gesvMixedFallback abandons the mixed route: it performs exactly the plain
// Gesv operations — float64 Getrf on a in place, then Getrs on a copy of b
// — so the delivered x, factors, and pivots are bit-identical to the plain
// driver's. reason (a MixedFallback* code) is passed through as iter.
func gesvMixedFallback[H core.Scalar](cfg *core.Config, reason, n, nrhs int, a []H, lda int, ipiv []int, b []H, ldb int, x []H, ldx int) (iter, info int) {
	info = Getrf(cfg, n, n, a, lda, ipiv)
	if info == 0 {
		Lacpy('A', n, nrhs, b, ldb, x, ldx)
		Getrs(cfg, NoTrans, n, nrhs, a, lda, ipiv, x, ldx)
	}
	return reason, info
}

// posvMixedEngine is the shared H↔L implementation behind PosvMixed.
func posvMixedEngine[H, L core.Scalar](cfg *core.Config, uplo Uplo, n, nrhs int, a []H, lda int, b []H, ldb int, x []H, ldx int) (iter, info int) {
	if n == 0 {
		return 0, 0
	}
	anrm := Lansy(InfNorm, uplo, n, a, lda)
	if math.IsNaN(anrm) || math.IsInf(anrm, 0) {
		return posvMixedFallback(cfg, MixedFallbackNonFinite, uplo, n, nrhs, a, lda, b, ldb, x, ldx)
	}
	// Demote only the stored triangle: the opposite triangle of a is dead
	// storage that may hold anything, and the scratch's is stale pool
	// content — neither is read by Potrf/Potrs or the screening below.
	sa := blas.GetScratch[L](n * n)
	defer blas.PutScratch(sa)
	triOK := true
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		demoteMat(hi-lo, 1, a[lo+j*lda:], lda, sa[lo+j*n:], n)
		triOK = triOK && core.AllFinite(sa[lo+j*n:hi+j*n])
	}
	if !triOK {
		return posvMixedFallback(cfg, MixedFallbackNonFinite, uplo, n, nrhs, a, lda, b, ldb, x, ldx)
	}
	if Potrf(cfg, uplo, n, sa, n) != 0 {
		return posvMixedFallback(cfg, MixedFallbackSingular, uplo, n, nrhs, a, lda, b, ldb, x, ldx)
	}
	// Condition screen, as in gesvMixedEngine. A symmetric matrix's ∞-norm
	// equals its 1-norm, so anrm is the right operand for Pocon.
	if rc := Pocon[L](cfg, uplo, n, sa, n, anrm); rc < mixedRcondFloorMul*core.Eps[L]() {
		return posvMixedFallback(cfg, MixedFallbackIllConditioned, uplo, n, nrhs, a, lda, b, ldb, x, ldx)
	}
	solve := func(r []L) { Potrs(cfg, uplo, n, nrhs, sa, n, r, n) }
	residual := func(r []H) {
		mone, one := core.FromFloat[H](-1), core.FromFloat[H](1)
		if core.IsComplex[H]() {
			blas.Hemm(cfg, Left, uplo, n, nrhs, mone, a, lda, x, ldx, one, r, n)
		} else {
			blas.Symm(cfg, Left, uplo, n, nrhs, mone, a, lda, x, ldx, one, r, n)
		}
	}
	iter = mixedRefine(cfg, n, nrhs, anrm, b, ldb, x, ldx, solve, residual)
	if iter < 0 {
		return posvMixedFallback(cfg, iter, uplo, n, nrhs, a, lda, b, ldb, x, ldx)
	}
	return iter, 0
}

// posvMixedFallback is gesvMixedFallback for the Cholesky route: plain Posv
// operations on the same bits, bit-identical results.
func posvMixedFallback[H core.Scalar](cfg *core.Config, reason int, uplo Uplo, n, nrhs int, a []H, lda int, b []H, ldb int, x []H, ldx int) (iter, info int) {
	info = Potrf(cfg, uplo, n, a, lda)
	if info == 0 {
		Lacpy('A', n, nrhs, b, ldb, x, ldx)
		Potrs(cfg, uplo, n, nrhs, a, lda, x, ldx)
	}
	return reason, info
}

// mixedRefine runs the shared refinement loop: the initial low-precision
// solve of b, then residual/correct sweeps until the backward-error
// criterion holds for every column, a non-finite value appears, or the
// sweep bound is hit. solve overwrites an n×nrhs low-precision buffer with
// the factored solve; residual accumulates r -= A·x in full precision on a
// buffer pre-loaded with b. Returns the sweep count on convergence or a
// negative MixedFallback* code.
func mixedRefine[H, L core.Scalar](cfg *core.Config, n, nrhs int, anrm float64, b []H, ldb int, x []H, ldx int,
	solve func(r []L), residual func(r []H)) int {

	sx := blas.GetScratch[L](n * nrhs)
	defer blas.PutScratch(sx)
	demoteMat(n, nrhs, b, ldb, sx, n)
	if !core.AllFinite(sx) {
		return MixedFallbackNonFinite
	}
	solve(sx)
	promoteMat(n, nrhs, sx, n, x, ldx)

	r := blas.GetScratch[H](n * nrhs)
	defer blas.PutScratch(r)
	// Convergence: ‖r_j‖∞ ≤ ‖x_j‖∞ · anrm · n · eps64 for every column j —
	// a normwise backward error of at most n·eps64.
	cte := anrm * float64(n) * core.EpsDouble
	itermax := core.Cfg(cfg).MixedIterMax
	for it := 0; ; it++ {
		// Cancellation checkpoint: once per refinement sweep.
		cfg.Checkpoint()
		Lacpy('A', n, nrhs, b, ldb, r, n)
		residual(r)
		if !core.AllFinite(r) {
			// Consistent exception handling: a non-finite residual means the
			// low-precision solve overflowed or the promoted solution went
			// non-finite; iterating further cannot recover, so abandon now
			// rather than at the sweep bound.
			return MixedFallbackNonFinite
		}
		converged := true
		for j := 0; j < nrhs; j++ {
			if colMaxAbs(r[j*n:j*n+n]) > colMaxAbs(x[j*ldx:j*ldx+n])*cte {
				converged = false
				break
			}
		}
		if converged {
			return it
		}
		if it >= itermax {
			return MixedFallbackStalled
		}
		// Correction: d = A⁻¹·r through the low-precision factors, x += d.
		demoteMat(n, nrhs, r, n, sx, n)
		if !core.AllFinite(sx) {
			return MixedFallbackNonFinite
		}
		solve(sx)
		for j := 0; j < nrhs; j++ {
			axpyPromote(n, sx[j*n:j*n+n], x[j*ldx:j*ldx+n])
		}
	}
}
