package lapack

import (
	"math"
	"sort"

	"repro/internal/blas"
	"repro/internal/core"
)

// dcCutoff is the problem size below which the divide & conquer
// eigensolver falls back to the QL/QR iteration, as LAPACK's SMLSIZ.
const dcCutoff = 25

// Stedc computes all eigenvalues and eigenvectors of a symmetric
// tridiagonal matrix by Cuppen's divide & conquer method with deflation
// and a safeguarded secular-equation solver (xSTEDC). d (n) and e (n-1)
// are overwritten; on success d holds the eigenvalues ascending. If z is
// non-nil (n×n) it is multiplied by the tridiagonal eigenvector matrix:
// pass the identity for the eigenvectors of T itself, or the Sytrd basis
// from Orgtr for those of the original dense matrix. Returns non-zero if
// the QL/QR fallback fails on a leaf block.
func Stedc[T core.Scalar](cfg *core.Config, n int, d, e []float64, z []T, ldz int) int {
	if n == 0 {
		return 0
	}
	if z == nil {
		return Sterf(cfg, n, d, e)
	}
	// Compute the eigenvector matrix of T in float64 and apply it to z.
	qt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		qt[i+i*n] = 1
	}
	if info := stedcRec(cfg, n, d, e, qt, n); info != 0 {
		return info
	}
	// z := z · qt, done in the element type of z.
	qtT := make([]T, n*n)
	for i := range qt {
		qtT[i] = core.FromFloat[T](qt[i])
	}
	prod := make([]T, n*n)
	one := core.FromFloat[T](1)
	zero := core.FromFloat[T](0)
	// Use a dense multiply on the full z panel.
	zcopy := make([]T, n*n)
	Lacpy('A', n, n, z, ldz, zcopy, n)
	blas.Gemm(cfg, NoTrans, NoTrans, n, n, n, one, zcopy, n, qtT, n, zero, prod, n)
	Lacpy('A', n, n, prod, n, z, ldz)
	return 0
}

// stedcRec is the recursive kernel operating on float64 eigenvector
// accumulation (q starts as the identity of order n).
func stedcRec(cfg *core.Config, n int, d, e []float64, q []float64, ldq int) int {
	cfg.Checkpoint() // once per D&C tree node
	if n <= dcCutoff {
		return Steqr(cfg, n, d, e, q, ldq)
	}
	m := n / 2
	rho := e[m-1]
	// Rank-one tear: T = diag(T1', T2') + |rho|·v·vᵀ with v carrying a
	// sign on its second half when rho < 0.
	sgn := 1.0
	if rho < 0 {
		sgn = -1
	}
	d[m-1] -= math.Abs(rho)
	d[m] -= math.Abs(rho)
	// Recurse on the halves, accumulating into the diagonal blocks of q.
	if info := stedcRec(cfg, m, d[:m], e[:m-1], q, ldq); info != 0 {
		return info
	}
	if info := stedcRec(cfg, n-m, d[m:], e[m:], q[m+m*ldq:], ldq); info != 0 {
		return info
	}
	// Merge: eigenproblem of D + |rho|·z·zᵀ with
	// z = [last row of Q1; sgn · first row of Q2].
	zv := make([]float64, n)
	for i := 0; i < m; i++ {
		zv[i] = q[m-1+i*ldq]
	}
	for i := m; i < n; i++ {
		zv[i] = sgn * q[m+i*ldq]
	}
	return dcMerge(cfg, n, m, math.Abs(rho), d, zv, q, ldq)
}

// dcMerge solves the rank-one modified diagonal eigenproblem
// D + rho·z·zᵀ (rho > 0) and updates the eigenvector accumulation q,
// whose relevant block structure is [Q1 0; 0 Q2] with the split at m.
func dcMerge(cfg *core.Config, n, m int, rho float64, d, zv []float64, q []float64, ldq int) int {
	eps := core.EpsDouble
	// Sort the diagonal entries ascending, permuting z and the q columns.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return d[perm[a]] < d[perm[b]] })
	ds := make([]float64, n)
	zs := make([]float64, n)
	qp := make([]float64, n*n)
	for k, p := range perm {
		ds[k] = d[p]
		zs[k] = zv[p]
		for i := 0; i < n; i++ {
			qp[i+k*n] = q[i+p*ldq]
		}
	}
	// Normalize z to unit norm, folding the factor into rho (dlaed2).
	znorm := blas.Nrm2(n, zs, 1)
	if znorm > 0 {
		for i := range zs {
			zs[i] /= znorm
		}
	}
	rho *= znorm * znorm
	// Deflation (dlaed2-lite).
	dmax := 0.0
	zmax := 0.0
	for i := 0; i < n; i++ {
		dmax = math.Max(dmax, math.Abs(ds[i]))
		zmax = math.Max(zmax, math.Abs(zs[i]))
	}
	tol := 8 * eps * math.Max(dmax, zmax)
	deflated := make([]bool, n)
	// Rule 1: negligible z component.
	for i := 0; i < n; i++ {
		if rho*math.Abs(zs[i]) <= tol {
			deflated[i] = true
		}
	}
	// Rule 2: nearly equal diagonal entries — rotate one z component away.
	last := -1
	for i := 0; i < n; i++ {
		if deflated[i] {
			continue
		}
		if last >= 0 && math.Abs(ds[i]-ds[last]) <= tol {
			r := math.Hypot(zs[last], zs[i])
			c := zs[i] / r
			s := zs[last] / r
			// The rotation leaves an off-diagonal coupling of size
			// (dᵢ − d_last)·c·s, which deflation drops; only do so when it
			// is negligible (the xLAED2 criterion).
			if r > 0 && math.Abs((ds[i]-ds[last])*c*s) <= tol {
				// Rotate columns (last, i) of qp and the z pair so that
				// zs[last] becomes 0; adjust the diagonal pair.
				for row := 0; row < n; row++ {
					x, y := qp[row+last*n], qp[row+i*n]
					qp[row+last*n] = c*x - s*y
					qp[row+i*n] = s*x + c*y
				}
				dl := ds[last]
				di := ds[i]
				ds[last] = dl*c*c + di*s*s
				ds[i] = dl*s*s + di*c*c
				zs[i] = r
				zs[last] = 0
				deflated[last] = true
			}
		}
		last = i
	}
	// Partition into the secular (non-deflated) set and the deflated set.
	var sec []int
	var defl []int
	for i := 0; i < n; i++ {
		if deflated[i] {
			defl = append(defl, i)
		} else {
			sec = append(sec, i)
		}
	}
	k := len(sec)
	lam := make([]float64, n)
	// Deflated eigenpairs pass through unchanged.
	for _, i := range defl {
		lam[i] = ds[i]
	}
	if k > 0 {
		dd := make([]float64, k)
		zz := make([]float64, k)
		for a, i := range sec {
			dd[a] = ds[i]
			zz[a] = zs[i]
		}
		lams := make([]float64, k)
		uhat := make([]float64, k*k)
		solveSecular(k, rho, dd, zz, lams, uhat)
		// Scatter back and form the updated eigenvectors:
		// columns sec of qp combined with uhat.
		qsec := make([]float64, n*k)
		for a, i := range sec {
			copy(qsec[a*n:a*n+n], qp[i*n:i*n+n])
		}
		qnew := make([]float64, n*k)
		blas.Gemm(cfg, NoTrans, NoTrans, n, k, k, 1.0, qsec, n, uhat, k, 0.0, qnew, n)
		for a, i := range sec {
			lam[i] = lams[a]
			copy(qp[i*n:i*n+n], qnew[a*n:a*n+n])
		}
	}
	// Final ascending sort of all eigenpairs.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lam[order[a]] < lam[order[b]] })
	for i := 0; i < n; i++ {
		d[i] = lam[order[i]]
	}
	for kcol, p := range order {
		for i := 0; i < n; i++ {
			q[i+kcol*ldq] = qp[i+p*n]
		}
	}
	return 0
}

// solveSecular solves the secular equation 1 + rho·Σ zⱼ²/(dⱼ − λ) = 0 for
// each of its k roots (d ascending, rho > 0, all z non-negligible), and
// builds the stabilized eigenvectors by the Gu–Eisenstat z-recomputation
// (xLAED4/xLAED3 roles). u receives the k×k eigenvector matrix of the
// rank-one update.
//
// Each root is computed in the shifted variable τᵢ = λᵢ − dᵢ, so the
// denominators dⱼ − λᵢ = (dⱼ − dᵢ) − τᵢ are formed from exact differences
// of the dⱼ and never suffer catastrophic cancellation or exact pole hits
// (the essential idea of xLAED4).
func solveSecular(k int, rho float64, d, z []float64, lam []float64, u []float64) {
	solveSecularCore(k, rho, d, z, lam, u)
}

// solveSecularCore is solveSecular returning its internal stabilized
// quantities: the Gu–Eisenstat recomputed ẑ and the pole-difference
// denominators denom[j+i*k] = dⱼ − λᵢ. Bdsdc needs both to build the left
// singular vectors of its rank-one merge (whose components are
// dⱼ·ẑⱼ/(dⱼ² − σᵢ²) on top of the right-vector formula).
func solveSecularCore(k int, rho float64, d, z []float64, lam []float64, u []float64) (zhatOut, denomOut []float64) {
	if k == 1 {
		lam[0] = d[0] + rho*z[0]*z[0]
		u[0] = 1
		return []float64{z[0]}, []float64{d[0] - lam[0]}
	}
	zz := 0.0
	for j := 0; j < k; j++ {
		zz += z[j] * z[j]
	}
	// denom[j + i*k] = dⱼ − λᵢ, kept in difference form relative to the
	// anchoring pole so the smallest denominator is always accurate (the
	// essential device of xLAED4: roots clinging to the right pole of
	// their interval are shifted from that pole, with negative τ).
	denom := make([]float64, k*k)
	for i := 0; i < k; i++ {
		// f(base; τ) = 1 + ρ Σ zⱼ²/((dⱼ−d_base) − τ), increasing in τ
		// between consecutive poles.
		f := func(base int, t float64) float64 {
			s := 1.0
			for j := 0; j < k; j++ {
				s += rho * z[j] * z[j] / ((d[j] - d[base]) - t)
			}
			return s
		}
		base := i
		var a, b float64
		if i == k-1 {
			// Last root lies in (d[k-1], d[k-1] + ρ·Σz²); anchor left.
			a, b = 0, rho*zz
		} else {
			gap := d[i+1] - d[i]
			if f(i, 0.5*gap) > 0 {
				// Root in the left half: anchor at dᵢ, τ ∈ (0, gap/2].
				a, b = 0, 0.5*gap
			} else {
				// Root in the right half: anchor at dᵢ₊₁, τ ∈ [−gap/2, 0).
				base = i + 1
				a, b = -0.5*gap, 0
			}
		}
		for it := 0; it < 140; it++ {
			mid := 0.5 * (a + b)
			if mid <= a || mid >= b {
				break
			}
			if f(base, mid) < 0 {
				a = mid
			} else {
				b = mid
			}
		}
		tau := 0.5 * (a + b)
		if tau == 0 {
			// Keep λ strictly off the pole.
			tau = math.SmallestNonzeroFloat64
			if base != i {
				tau = -tau
			}
		}
		lam[i] = d[base] + tau
		for j := 0; j < k; j++ {
			denom[j+i*k] = (d[j] - d[base]) - tau
		}
	}
	// Gu–Eisenstat: recompute ẑ so the eigenvector formula is stable.
	// (λᵢ − dⱼ) = −denom[j+i*k], exactly the quantities bisection produced.
	zhat := make([]float64, k)
	for j := 0; j < k; j++ {
		p := -denom[j+(k-1)*k] / rho
		for i := 0; i < k-1; i++ {
			num := -denom[j+i*k]
			var den float64
			if i < j {
				den = d[i] - d[j]
			} else {
				den = d[i+1] - d[j]
			}
			p *= num / den
		}
		zhat[j] = core.Sign(math.Sqrt(math.Abs(p)), z[j])
	}
	// Eigenvectors: u(:,i) ∝ ẑⱼ / (dⱼ − λᵢ).
	for i := 0; i < k; i++ {
		nrm := 0.0
		for j := 0; j < k; j++ {
			v := zhat[j] / denom[j+i*k]
			u[j+i*k] = v
			nrm += v * v
		}
		nrm = math.Sqrt(nrm)
		for j := 0; j < k; j++ {
			u[j+i*k] /= nrm
		}
	}
	return zhat, denom
}

// Syevd computes all eigenvalues and, optionally, eigenvectors of a
// symmetric/Hermitian matrix using the divide & conquer algorithm when
// eigenvectors are wanted (the xSYEVD/xHEEVD driver).
func Syevd[T core.Scalar](cfg *core.Config, jobz bool, uplo Uplo, n int, a []T, lda int, w []float64) int {
	if n == 0 {
		return 0
	}
	e := make([]float64, max(0, n-1))
	tau := make([]T, max(0, n-1))
	Sytrd(cfg, uplo, n, a, lda, w, e, tau)
	if !jobz {
		return Sterf(cfg, n, w, e)
	}
	Orgtr(cfg, uplo, n, a, lda, tau)
	return Stedc(cfg, n, w, e, a, lda)
}

// Stevd computes all eigenvalues and, optionally, eigenvectors of a real
// symmetric tridiagonal matrix by divide & conquer (the xSTEVD driver).
func Stevd[T core.Scalar](cfg *core.Config, n int, d, e []float64, z []T, ldz int) int {
	if n == 0 {
		return 0
	}
	if z == nil {
		return Sterf(cfg, n, d, e)
	}
	Laset('A', n, n, core.FromFloat[T](0), core.FromFloat[T](1), z, ldz)
	return Stedc(cfg, n, d, e, z, ldz)
}

// SolveSecularForTest exposes the secular solver to the package tests,
// which validate it against brute-force eigensolves.
func SolveSecularForTest(k int, rho float64, d, z []float64, lam []float64, u []float64) {
	solveSecular(k, rho, d, z, lam, u)
}
