package lapack

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
)

// Pbtrf computes the Cholesky factorization of a symmetric/Hermitian
// positive definite band matrix with kd off-diagonals (xPBTRF, unblocked
// xPBTF2 algorithm). Returns i > 0 if the leading minor of order i is not
// positive definite.
func Pbtrf[T core.Scalar](uplo Uplo, n, kd int, ab []T, ldab int) int {
	kld := max(1, ldab-1)
	if uplo == Upper {
		for j := 0; j < n; j++ {
			ajj := core.Re(ab[kd+j*ldab])
			if ajj <= 0 || math.IsNaN(ajj) {
				return j + 1
			}
			ajj = math.Sqrt(ajj)
			ab[kd+j*ldab] = core.FromFloat[T](ajj)
			kn := min(kd, n-1-j)
			if kn > 0 {
				// Row j right of the diagonal, stored with stride ldab-1.
				row := ab[kd-1+(j+1)*ldab:]
				blas.ScalReal(kn, 1/ajj, row, kld)
				lacgv(kn, row, kld)
				blas.Her(Upper, kn, -1, row, kld, ab[kd+(j+1)*ldab:], kld)
				lacgv(kn, row, kld)
			}
		}
		return 0
	}
	for j := 0; j < n; j++ {
		ajj := core.Re(ab[j*ldab])
		if ajj <= 0 || math.IsNaN(ajj) {
			return j + 1
		}
		ajj = math.Sqrt(ajj)
		ab[j*ldab] = core.FromFloat[T](ajj)
		kn := min(kd, n-1-j)
		if kn > 0 {
			col := ab[1+j*ldab:]
			blas.ScalReal(kn, 1/ajj, col, 1)
			blas.Her(Lower, kn, -1, col, 1, ab[(j+1)*ldab:], kld)
		}
	}
	return 0
}

// Pbtrs solves A·X = B using the band Cholesky factorization from Pbtrf
// (xPBTRS).
func Pbtrs[T core.Scalar](uplo Uplo, n, kd, nrhs int, ab []T, ldab int, b []T, ldb int) {
	for j := 0; j < nrhs; j++ {
		col := b[j*ldb:]
		if uplo == Upper {
			blas.Tbsv(Upper, ConjTrans, NonUnit, n, kd, ab, ldab, col, 1)
			blas.Tbsv(Upper, NoTrans, NonUnit, n, kd, ab, ldab, col, 1)
		} else {
			blas.Tbsv(Lower, NoTrans, NonUnit, n, kd, ab, ldab, col, 1)
			blas.Tbsv(Lower, ConjTrans, NonUnit, n, kd, ab, ldab, col, 1)
		}
	}
}

// Pbsv solves A·X = B for a positive definite band matrix (the xPBSV
// driver).
func Pbsv[T core.Scalar](uplo Uplo, n, kd, nrhs int, ab []T, ldab int, b []T, ldb int) int {
	info := Pbtrf(uplo, n, kd, ab, ldab)
	if info == 0 {
		Pbtrs(uplo, n, kd, nrhs, ab, ldab, b, ldb)
	}
	return info
}

// Pbcon estimates the reciprocal 1-norm condition number of a positive
// definite band matrix from its Cholesky factorization (xPBCON).
func Pbcon[T core.Scalar](uplo Uplo, n, kd int, ab []T, ldab int, anorm float64) float64 {
	if n == 0 {
		return 1
	}
	if anorm == 0 {
		return 0
	}
	ainvnm := Lacn2(n, func(conjTrans bool, x []T) {
		Pbtrs(uplo, n, kd, 1, ab, ldab, x, n)
	})
	return rcondFromEst(ainvnm, anorm)
}

func absSbmv[T core.Scalar](uplo Uplo, n, kd int, ab []T, ldab int, xa, y []float64) {
	at := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		if j-i > kd {
			return 0
		}
		if uplo == Upper {
			return core.Abs1(ab[kd+i-j+j*ldab])
		}
		return core.Abs1(ab[j-i+i*ldab])
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for k := max(0, i-kd); k <= min(n-1, i+kd); k++ {
			s += at(i, k) * xa[k]
		}
		y[i] += s
	}
}

// Pbrfs iteratively refines the solution of a positive definite band system
// and returns error bounds (xPBRFS).
func Pbrfs[T core.Scalar](uplo Uplo, n, kd, nrhs int, ab []T, ldab int, afb []T, ldafb int, b []T, ldb int, x []T, ldx int, ferr, berr []float64) {
	rfs(NoTrans, n, nrhs,
		func(_ Trans, alpha T, x []T, beta T, y []T) {
			if core.IsComplex[T]() {
				blas.Hbmv(uplo, n, kd, alpha, ab, ldab, x, 1, beta, y, 1)
			} else {
				blas.Sbmv(uplo, n, kd, alpha, ab, ldab, x, 1, beta, y, 1)
			}
		},
		func(_ Trans, xa, y []float64) { absSbmv(uplo, n, kd, ab, ldab, xa, y) },
		func(_ Trans, r []T) { Pbtrs(uplo, n, kd, 1, afb, ldafb, r, n) },
		b, ldb, x, ldx, ferr, berr)
}

// Pbsvx is the expert driver for positive definite band systems (xPBSVX).
func Pbsvx[T core.Scalar](fact Fact, uplo Uplo, n, kd, nrhs int, ab []T, ldab int, afb []T, ldafb int, b []T, ldb int, x []T, ldx int) PosvxResult {
	res := PosvxResult{
		Equed: EquedNone,
		S:     make([]float64, n),
		Ferr:  make([]float64, nrhs),
		Berr:  make([]float64, nrhs),
	}
	for i := range res.S {
		res.S[i] = 1
	}
	diagIdx := func(j int) int {
		if uplo == Upper {
			return kd + j*ldab
		}
		return j * ldab
	}
	if fact == FactEquilibrate && n > 0 {
		smin, amax := core.Re(ab[diagIdx(0)]), core.Re(ab[diagIdx(0)])
		ok := true
		for i := 0; i < n; i++ {
			d := core.Re(ab[diagIdx(i)])
			if d <= 0 {
				ok = false
				break
			}
			res.S[i] = d
			smin = math.Min(smin, d)
			amax = math.Max(amax, d)
		}
		if ok && math.Sqrt(smin)/math.Sqrt(amax) < 0.1 {
			for i := 0; i < n; i++ {
				res.S[i] = 1 / math.Sqrt(res.S[i])
			}
			for j := 0; j < n; j++ {
				for i := max(0, j-kd); i <= min(n-1, j+kd); i++ {
					var k int
					if uplo == Upper {
						if i > j {
							continue
						}
						k = kd + i - j + j*ldab
					} else {
						if i < j {
							continue
						}
						k = i - j + j*ldab
					}
					ab[k] *= core.FromFloat[T](res.S[i] * res.S[j])
				}
			}
			res.Equed = EquedBoth
		} else {
			for i := range res.S {
				res.S[i] = 1
			}
		}
	}
	if res.Equed == EquedBoth {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				b[i+j*ldb] *= core.FromFloat[T](res.S[i])
			}
		}
	}
	if fact != FactFact {
		// Copy the band into afb.
		for j := 0; j < n; j++ {
			copy(afb[j*ldafb:j*ldafb+kd+1], ab[j*ldab:j*ldab+kd+1])
		}
		res.Info = Pbtrf(uplo, n, kd, afb, ldafb)
	}
	if res.Info > 0 {
		return res
	}
	anorm := Lansb(OneNorm, uplo, n, kd, ab, ldab)
	res.RCond = Pbcon(uplo, n, kd, afb, ldafb, anorm)
	Lacpy('A', n, nrhs, b, ldb, x, ldx)
	Pbtrs(uplo, n, kd, nrhs, afb, ldafb, x, ldx)
	Pbrfs(uplo, n, kd, nrhs, ab, ldab, afb, ldafb, b, ldb, x, ldx, res.Ferr, res.Berr)
	if res.Equed == EquedBoth {
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				x[i+j*ldx] *= core.FromFloat[T](res.S[i])
			}
		}
	}
	if res.RCond < core.Eps[T]() {
		res.Info = n + 1
	}
	return res
}
