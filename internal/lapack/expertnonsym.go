package lapack

import (
	"math"
	"math/cmplx"

	"repro/internal/core"
)

// GeesxResult carries the extra outputs of the expert Schur drivers
// (xGEESX): reciprocal condition numbers for the average of the selected
// eigenvalue cluster (RCondE) and for the corresponding right invariant
// subspace (RCondV).
type GeesxResult struct {
	SDim   int
	RCondE float64
	RCondV float64
	Info   int
}

// sepEstimates computes the xTRSEN condition estimates for a real Schur
// form partitioned after column m: RCONDE = 1/sqrt(1+‖X‖F²) with X the
// solution of T11·X − X·T22 = T12, and RCONDV = sep(T11, T22) estimated
// through the 1-norm estimator on the inverse Sylvester operator.
func sepEstimates(cfg *core.Config, n, m int, t []float64, ldt int) (rconde, rcondv float64) {
	if m == 0 || m == n {
		return 1, Lange(OneNorm, n, n, t, ldt)
	}
	n2 := n - m
	// X solves T11·X − X·T22 = T12.
	x := make([]float64, m*n2)
	Lacpy('A', m, n2, t[m*ldt:], ldt, x, m)
	Trsyl(cfg, false, -1, m, n2, t, ldt, t[m+m*ldt:], ldt, x, m)
	fro := 0.0
	for _, v := range x {
		fro += v * v
	}
	rconde = 1 / math.Sqrt(1+fro)
	// sep: 1/‖inv(Sylvester operator)‖₁ via Lacn2 on the vectorized solve.
	est := Lacn2(m*n2, func(conjTrans bool, v []float64) {
		Trsyl(cfg, conjTrans, -1, m, n2, t, ldt, t[m+m*ldt:], ldt, v, m)
	})
	if est == 0 {
		return rconde, Lange(OneNorm, n, n, t, ldt)
	}
	return rconde, 1 / est
}

// sepEstimatesC is the complex counterpart of sepEstimates.
func sepEstimatesC(n, m int, t []complex128, ldt int) (rconde, rcondv float64) {
	if m == 0 || m == n {
		return 1, Lange(OneNorm, n, n, t, ldt)
	}
	n2 := n - m
	x := make([]complex128, m*n2)
	Lacpy('A', m, n2, t[m*ldt:], ldt, x, m)
	TrsylC(false, -1, m, n2, t, ldt, t[m+m*ldt:], ldt, x, m)
	fro := 0.0
	for _, v := range x {
		fro += real(v)*real(v) + imag(v)*imag(v)
	}
	rconde = 1 / math.Sqrt(1+fro)
	est := Lacn2(m*n2, func(conjTrans bool, v []complex128) {
		TrsylC(conjTrans, -1, m, n2, t, ldt, t[m+m*ldt:], ldt, v, m)
	})
	if est == 0 {
		return rconde, Lange(OneNorm, n, n, t, ldt)
	}
	return rconde, 1 / est
}

// Geesx computes the real Schur factorization with eigenvalue reordering
// and condition estimates (the xGEESX expert driver). sel must be non-nil;
// the selected eigenvalues are moved to the top-left and RCondE/RCondV
// describe the sensitivity of their cluster and invariant subspace.
func Geesx[T core.Float](cfg *core.Config, jobvs bool, sel func(wr, wi float64) bool, n int, a []T, lda int, wr, wi []float64, vs []T, ldvs int) GeesxResult {
	var res GeesxResult
	if n == 0 {
		res.RCondE, res.RCondV = 1, 0
		return res
	}
	h := promoteReal(n, n, a, lda)
	tau := make([]float64, max(0, n-1))
	Gehrd(cfg, n, 0, n-1, h, n, tau)
	z := make([]float64, n*n)
	Lacpy('A', n, n, h, n, z, n)
	Orghr(cfg, n, 0, n-1, z, n, tau)
	if info := Hseqr(cfg, true, n, 0, n-1, h, n, wr, wi, z, n); info != 0 {
		res.Info = info
		return res
	}
	if sel != nil {
		res.SDim = reorderSchur(cfg, n, h, n, z, n, wr, wi, sel)
	}
	res.RCondE, res.RCondV = sepEstimates(cfg, n, res.SDim, h, n)
	demoteReal(n, n, h, a, lda)
	if jobvs {
		demoteReal(n, n, z, vs, ldvs)
	}
	return res
}

// GeesxC is the complex counterpart of Geesx.
func GeesxC[T core.Cmplx](cfg *core.Config, jobvs bool, sel func(w complex128) bool, n int, a []T, lda int, w []complex128, vs []T, ldvs int) GeesxResult {
	var res GeesxResult
	if n == 0 {
		res.RCondE, res.RCondV = 1, 0
		return res
	}
	h := promoteCmplx(n, n, a, lda)
	vsc := make([]complex128, n*n)
	sdim, info := GeesC[complex128](cfg, true, sel, n, h, n, w, vsc, n)
	if info != 0 {
		res.Info = info
		return res
	}
	res.SDim = sdim
	res.RCondE, res.RCondV = sepEstimatesC(n, sdim, h, n)
	demoteCmplx(n, n, h, a, lda)
	if jobvs {
		demoteCmplx(n, n, vsc, vs, ldvs)
	}
	return res
}

// GeevxResult carries the extra outputs of the expert eigendrivers
// (xGEEVX): balancing information and per-eigenvalue reciprocal condition
// numbers for the eigenvalues (RCondE, the cosine between left and right
// eigenvectors) and for the right eigenvectors (RCondV, a sep estimate —
// see DESIGN.md for the estimator used).
type GeevxResult struct {
	ILo, IHi int
	Scale    []float64
	ABNrm    float64
	RCondE   []float64
	RCondV   []float64
	Info     int
}

// condFromVectors computes RCONDE_i = |uᵢᴴ·vᵢ| for unit left/right
// eigenvector pairs in the LAPACK real packing.
func condFromVectors(n int, wi []float64, vl, vr []float64, ldv int, rconde []float64) {
	for j := 0; j < n; j++ {
		if wi[j] == 0 {
			num, nu, nv := 0.0, 0.0, 0.0
			for i := 0; i < n; i++ {
				num += vl[i+j*ldv] * vr[i+j*ldv]
				nu += vl[i+j*ldv] * vl[i+j*ldv]
				nv += vr[i+j*ldv] * vr[i+j*ldv]
			}
			rconde[j] = math.Abs(num) / math.Max(math.Sqrt(nu*nv), 1e-300)
			continue
		}
		var num complex128
		nu, nv := 0.0, 0.0
		for i := 0; i < n; i++ {
			u := complex(vl[i+j*ldv], vl[i+(j+1)*ldv])
			v := complex(vr[i+j*ldv], vr[i+(j+1)*ldv])
			num += cmplx.Conj(u) * v
			nu += real(u)*real(u) + imag(u)*imag(u)
			nv += real(v)*real(v) + imag(v)*imag(v)
		}
		rconde[j] = cmplx.Abs(num) / math.Max(math.Sqrt(nu*nv), 1e-300)
		rconde[j+1] = rconde[j]
		j++
	}
}

// sepPerEigenvalue estimates RCONDV_i = 1/‖(T̃ᵢ − λᵢI)⁻¹‖₁ where T̃ᵢ is the
// complex triangular Schur form with row and column i deleted — the
// deletion approximation of sep(λᵢ, T22) documented in DESIGN.md.
func sepPerEigenvalue(n int, t []complex128, ldt int, w []complex128, rcondv []float64) {
	if n == 1 {
		rcondv[0] = cmplx.Abs(t[0])
		if rcondv[0] == 0 {
			rcondv[0] = 1
		}
		return
	}
	m := n - 1
	sub := make([]complex128, m*m)
	for i := 0; i < n; i++ {
		// Build T with row/column i deleted (still upper triangular).
		for jj, js := 0, 0; js < n; js++ {
			if js == i {
				continue
			}
			for ii, is := 0, 0; is < n; is++ {
				if is == i {
					continue
				}
				sub[ii+jj*m] = t[is+js*ldt]
				ii++
			}
			jj++
		}
		lam := w[i]
		smin := math.SmallestNonzeroFloat64 * 0x1p52
		est := Lacn2(m, func(conjTrans bool, v []complex128) {
			// Solve (sub − λI) x = v (or its conjugate transpose).
			if !conjTrans {
				for k := m - 1; k >= 0; k-- {
					s := v[k]
					for p := k + 1; p < m; p++ {
						s -= sub[k+p*m] * v[p]
					}
					d := sub[k+k*m] - lam
					if cmplx.Abs(d) < smin {
						d = complex(smin, 0)
					}
					v[k] = s / d
				}
			} else {
				for k := 0; k < m; k++ {
					s := v[k]
					for p := 0; p < k; p++ {
						s -= cmplx.Conj(sub[p+k*m]) * v[p]
					}
					d := cmplx.Conj(sub[k+k*m] - lam)
					if cmplx.Abs(d) < smin {
						d = complex(smin, 0)
					}
					v[k] = s / d
				}
			}
		})
		if est == 0 {
			rcondv[i] = Lange(OneNorm, m, m, sub, m)
		} else {
			rcondv[i] = 1 / est
		}
	}
}

// Geevx computes eigenvalues, optional eigenvectors, balancing details and
// condition numbers for a real general matrix (the xGEEVX expert driver).
// Balancing 'B' is always applied, as in the paper's LA_GEEVX default.
func Geevx[T core.Float](cfg *core.Config, jobvl, jobvr bool, n int, a []T, lda int, wr, wi []float64, vl []T, ldvl int, vr []T, ldvr int) GeevxResult {
	res := GeevxResult{
		Scale:  make([]float64, n),
		RCondE: make([]float64, n),
		RCondV: make([]float64, n),
	}
	if n == 0 {
		return res
	}
	// Condition numbers need both eigenvector sets; compute them even if
	// the caller asked for fewer.
	h := promoteReal(n, n, a, lda)
	res.ILo, res.IHi = Gebal[float64]('B', n, h, n, res.Scale)
	res.ABNrm = Lange(OneNorm, n, n, h, n)
	tau := make([]float64, max(0, n-1))
	Gehrd(cfg, n, res.ILo, res.IHi, h, n, tau)
	z := make([]float64, n*n)
	Lacpy('A', n, n, h, n, z, n)
	Orghr(cfg, n, res.ILo, res.IHi, z, n, tau)
	if info := Hseqr(cfg, true, n, res.ILo, res.IHi, h, n, wr, wi, z, n); info != 0 {
		res.Info = info
		return res
	}
	vrw := make([]float64, n*n)
	vlw := make([]float64, n*n)
	TrevcRight(n, h, n, wr, wi, z, n, vrw, n)
	TrevcLeft(n, h, n, wr, wi, z, n, vlw, n)
	condFromVectors(n, wi, vlw, vrw, n, res.RCondE)
	// Per-eigenvalue sep estimates on the complex triangular Schur form.
	tc := make([]complex128, n*n)
	for i := 0; i < n*n; i++ {
		tc[i] = complex(h[i], 0)
	}
	wc := make([]complex128, n)
	if info := HseqrC(cfg, true, n, 0, n-1, tc, n, wc, nil, 0); info == 0 {
		// Match the complex eigenvalue order to (wr, wi).
		perm := matchEigenvalues(n, wr, wi, wc)
		rcv := make([]float64, n)
		sepPerEigenvalue(n, tc, n, wc, rcv)
		for i := 0; i < n; i++ {
			res.RCondV[i] = rcv[perm[i]]
		}
	}
	// Back-transform and hand out the requested eigenvectors.
	Gebak[float64]('B', 'R', n, res.ILo, res.IHi, res.Scale, n, vrw, n)
	Gebak[float64]('B', 'L', n, res.ILo, res.IHi, res.Scale, n, vlw, n)
	normalizeEvecPairs(n, wr, wi, vrw, n)
	normalizeEvecPairs(n, wr, wi, vlw, n)
	if jobvr {
		demoteReal(n, n, vrw, vr, ldvr)
	}
	if jobvl {
		demoteReal(n, n, vlw, vl, ldvl)
	}
	demoteReal(n, n, h, a, lda)
	return res
}

// matchEigenvalues pairs each (wr, wi) eigenvalue with the closest entry
// of wc, greedily; returns the index map.
func matchEigenvalues(n int, wr, wi []float64, wc []complex128) []int {
	used := make([]bool, n)
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		target := complex(wr[i], wi[i])
		best, bd := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			if d := cmplx.Abs(wc[j] - target); d < bd {
				best, bd = j, d
			}
		}
		used[best] = true
		perm[i] = best
	}
	return perm
}

// GeevxC is the complex counterpart of Geevx.
func GeevxC[T core.Cmplx](cfg *core.Config, jobvl, jobvr bool, n int, a []T, lda int, w []complex128, vl []T, ldvl int, vr []T, ldvr int) GeevxResult {
	res := GeevxResult{
		Scale:  make([]float64, n),
		RCondE: make([]float64, n),
		RCondV: make([]float64, n),
	}
	if n == 0 {
		return res
	}
	h := promoteCmplx(n, n, a, lda)
	res.ILo, res.IHi = Gebal[complex128]('B', n, h, n, res.Scale)
	res.ABNrm = Lange(OneNorm, n, n, h, n)
	tau := make([]complex128, max(0, n-1))
	Gehrd(cfg, n, res.ILo, res.IHi, h, n, tau)
	z := make([]complex128, n*n)
	Lacpy('A', n, n, h, n, z, n)
	Orghr(cfg, n, res.ILo, res.IHi, z, n, tau)
	if info := HseqrC(cfg, true, n, res.ILo, res.IHi, h, n, w, z, n); info != 0 {
		res.Info = info
		return res
	}
	vrw := make([]complex128, n*n)
	vlw := make([]complex128, n*n)
	TrevcRightC(n, h, n, z, n, vrw, n)
	TrevcLeftC(n, h, n, z, n, vlw, n)
	for j := 0; j < n; j++ {
		var num complex128
		nu, nv := 0.0, 0.0
		for i := 0; i < n; i++ {
			num += cmplx.Conj(vlw[i+j*n]) * vrw[i+j*n]
			nu += real(vlw[i+j*n])*real(vlw[i+j*n]) + imag(vlw[i+j*n])*imag(vlw[i+j*n])
			nv += real(vrw[i+j*n])*real(vrw[i+j*n]) + imag(vrw[i+j*n])*imag(vrw[i+j*n])
		}
		res.RCondE[j] = cmplx.Abs(num) / math.Max(math.Sqrt(nu*nv), 1e-300)
	}
	sepPerEigenvalue(n, h, n, w, res.RCondV)
	Gebak[complex128]('B', 'R', n, res.ILo, res.IHi, res.Scale, n, vrw, n)
	Gebak[complex128]('B', 'L', n, res.ILo, res.IHi, res.Scale, n, vlw, n)
	normC := func(v []complex128) {
		for j := 0; j < n; j++ {
			nrm := 0.0
			for i := 0; i < n; i++ {
				nrm += real(v[i+j*n])*real(v[i+j*n]) + imag(v[i+j*n])*imag(v[i+j*n])
			}
			if nrm > 0 {
				s := complex(1/math.Sqrt(nrm), 0)
				for i := 0; i < n; i++ {
					v[i+j*n] *= s
				}
			}
		}
	}
	normC(vrw)
	normC(vlw)
	if jobvr {
		demoteCmplx(n, n, vrw, vr, ldvr)
	}
	if jobvl {
		demoteCmplx(n, n, vlw, vl, ldvl)
	}
	demoteCmplx(n, n, h, a, lda)
	return res
}
