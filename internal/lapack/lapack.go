// Package lapack is a from-scratch pure-Go implementation of the LAPACK 77
// computational core that the LAPACK90 interface layer (this module's public
// la and f77 packages) wraps.
//
// It follows the reference LAPACK conventions:
//
//   - column-major storage with explicit leading dimensions,
//   - an integer info return: 0 on success, -i when the i-th argument is
//     invalid (only checks that cannot be done in the wrapper layer happen
//     here), +i for numerical failures such as a zero pivot U(i,i)=0 —
//     reported 1-based exactly as in LAPACK,
//   - pivot vectors (ipiv) are 0-based Go indices internally; the public
//     f77 layer converts to LAPACK's 1-based convention.
//
// Routines are generic: a single real implementation covers LAPACK's S/D
// families (instantiated at float32 and float64) and a single complex
// implementation covers C/Z. Where an algorithm is identical up to
// conjugation the implementation is shared across all four element types.
package lapack

import (
	"repro/internal/blas"
	"repro/internal/core"
)

// Norm selects which matrix norm a xLANxx routine computes.
type Norm byte

// Norm values, matching the LAPACK character arguments.
const (
	MaxAbs        Norm = 'M' // max |a_ij| (not a consistent norm)
	OneNorm       Norm = '1' // maximum column sum
	InfNorm       Norm = 'I' // maximum row sum
	FrobeniusNorm Norm = 'F' // sqrt of sum of squares
)

// Valid reports whether n is one of the supported norms.
func (n Norm) Valid() bool {
	switch n {
	case MaxAbs, OneNorm, InfNorm, FrobeniusNorm:
		return true
	}
	return false
}

// Re-exported storage enums so lapack callers do not need to import blas
// alongside this package for every call.
type (
	// Uplo selects a triangle.
	Uplo = blas.Uplo
	// Trans selects an operation applied to a matrix operand.
	Trans = blas.Trans
	// Diag marks a unit or non-unit triangular diagonal.
	Diag = blas.Diag
	// Side selects a multiplication side.
	Side = blas.Side
)

// Enum values re-exported from package blas.
const (
	Upper     = blas.Upper
	Lower     = blas.Lower
	NoTrans   = blas.NoTrans
	TransT    = blas.TransT
	ConjTrans = blas.ConjTrans
	NonUnit   = blas.NonUnit
	Unit      = blas.Unit
	Left      = blas.Left
	Right     = blas.Right
)

// Crossover dimensions below which the condensed-form reductions stay
// unblocked: under ~4 panels the rank-2k/GEMM trailing updates are too small
// to amortize the extra Latrd/Labrd/Lahr2 bookkeeping.
const (
	nxSytrd = 128
	nxGebrd = 128
	nxGehrd = 128
)

// Ilaenv returns algorithm tuning parameters, the analogue of LAPACK's
// ILAENV. ispec 1 requests the optimal block size for the named routine
// (name "GETRF2" is the leaf order below which the recursive LU panel falls
// back to Getf2); ispec 3 is the crossover dimension below which the named
// routine should use unblocked code. The LA_GETRI wrapper in the paper's
// Appendix C queries exactly this hook to size its workspace.
//
// Block sizes come from the execution context threaded down from the API
// boundary (cfg may be nil, meaning the process default): the NB* fields of
// core.Config carry measured defaults, may be pinned at startup with the
// LA90_NB_* / LA90_NX_GEQRF environment variables (parsed once by
// core.FromEnv), and may be overridden per call. The defaults were
// re-measured against the packed Level-3 engine when the factorizations
// moved their panels onto it: with recursive, Level-3 panels the old nb²
// unblocked-panel penalty is gone, so LU prefers wider panels at large n
// (deeper GEMM k per update, fewer pivot sweeps), while QR keeps nb=32
// (Larft/Larfb overhead grows as nb²·n). The condensed reductions keep
// nb=32 as well: their panels are Level-2 bound (each Latrd/Labrd/Lahr2
// column touches the whole trailing matrix), so wider panels shrink the
// Level-3 fraction without saving panel work.
func Ilaenv(cfg *core.Config, ispec int, name string, n1, n2, n3, n4 int) int {
	cfg = core.Cfg(cfg)
	switch ispec {
	case 1: // optimal block size
		switch name {
		case "GETRF":
			if max(n1, n2) >= 512 {
				return cfg.NBGetrfLg
			}
			return cfg.NBGetrf
		case "GETRF2":
			return cfg.NBGetrf2
		case "POTRF":
			return cfg.NBPotrf
		case "GETRI":
			return 48
		case "SYTRF", "HETRF":
			return cfg.NBSytrf
		case "GEQRF", "GELQF", "ORGQR", "ORMQR", "ORGLQ", "ORMLQ":
			return cfg.NBGeqrf
		case "SYTRD", "HETRD":
			return cfg.NBSytrd
		case "GEBRD":
			return cfg.NBGebrd
		case "GEHRD":
			return cfg.NBGehrd
		}
		return 32
	case 2: // minimum block size
		return 2
	case 3: // crossover point below which unblocked code is used
		switch name {
		case "GEQRF", "GELQF":
			return cfg.NXGeqrf
		case "ORGQR", "ORMQR", "ORGLQ", "ORMLQ":
			return 8
		case "SYTRD", "HETRD":
			return nxSytrd
		case "GEBRD":
			return nxGebrd
		case "GEHRD":
			return nxGehrd
		}
		return 128
	}
	return 1
}
