// Package lapack is a from-scratch pure-Go implementation of the LAPACK 77
// computational core that the LAPACK90 interface layer (this module's public
// la and f77 packages) wraps.
//
// It follows the reference LAPACK conventions:
//
//   - column-major storage with explicit leading dimensions,
//   - an integer info return: 0 on success, -i when the i-th argument is
//     invalid (only checks that cannot be done in the wrapper layer happen
//     here), +i for numerical failures such as a zero pivot U(i,i)=0 —
//     reported 1-based exactly as in LAPACK,
//   - pivot vectors (ipiv) are 0-based Go indices internally; the public
//     f77 layer converts to LAPACK's 1-based convention.
//
// Routines are generic: a single real implementation covers LAPACK's S/D
// families (instantiated at float32 and float64) and a single complex
// implementation covers C/Z. Where an algorithm is identical up to
// conjugation the implementation is shared across all four element types.
package lapack

import (
	"repro/internal/blas"
	"repro/internal/core"
)

// Norm selects which matrix norm a xLANxx routine computes.
type Norm byte

// Norm values, matching the LAPACK character arguments.
const (
	MaxAbs        Norm = 'M' // max |a_ij| (not a consistent norm)
	OneNorm       Norm = '1' // maximum column sum
	InfNorm       Norm = 'I' // maximum row sum
	FrobeniusNorm Norm = 'F' // sqrt of sum of squares
)

// Valid reports whether n is one of the supported norms.
func (n Norm) Valid() bool {
	switch n {
	case MaxAbs, OneNorm, InfNorm, FrobeniusNorm:
		return true
	}
	return false
}

// Re-exported storage enums so lapack callers do not need to import blas
// alongside this package for every call.
type (
	// Uplo selects a triangle.
	Uplo = blas.Uplo
	// Trans selects an operation applied to a matrix operand.
	Trans = blas.Trans
	// Diag marks a unit or non-unit triangular diagonal.
	Diag = blas.Diag
	// Side selects a multiplication side.
	Side = blas.Side
)

// Enum values re-exported from package blas.
const (
	Upper     = blas.Upper
	Lower     = blas.Lower
	NoTrans   = blas.NoTrans
	TransT    = blas.TransT
	ConjTrans = blas.ConjTrans
	NonUnit   = blas.NonUnit
	Unit      = blas.Unit
	Left      = blas.Left
	Right     = blas.Right
)

// Factorization tuning parameters consumed by Ilaenv. Like the GEMM blocking
// parameters in internal/blas/tuning.go they have measured defaults and can
// be pinned at startup through environment variables:
//
//	LA90_NB_GETRF  block size of the lookahead LU           (default 64/128)
//	LA90_NB_POTRF  leaf size of the recursive Cholesky      (default 64)
//	LA90_NB_GEQRF  block size of the QR/LQ family           (default 32)
//	LA90_NB_SYTRF  panel width of blocked Sytrf/Hetrf       (default 48)
//	LA90_NX_GEQRF  crossover below which QR/LQ stay unblocked (default 64)
//	LA90_NB_GETRF2 leaf size of the recursive LU panel      (default 16)
//	LA90_NB_TRD    panel width of the blocked Sytrd/Hetrd   (default 32)
//	LA90_NB_BRD    panel width of the blocked Gebrd         (default 32)
//	LA90_NB_HRD    panel width of the blocked Gehrd         (default 32)
//
// The defaults were re-measured against the packed Level-3 engine after the
// factorizations moved their panels onto it (this PR): with recursive,
// Level-3 panels the old nb² unblocked-panel penalty is gone, so LU prefers
// wider panels at large n (deeper GEMM k per update, fewer pivot sweeps),
// while QR keeps nb=32 (Larft/Larfb overhead grows as nb²·n). The condensed
// reductions keep nb=32 as well: their panels are Level-2 bound (each Latrd/
// Labrd/Lahr2 column touches the whole trailing matrix), so wider panels
// shrink the Level-3 fraction without saving panel work.
var (
	nbGetrf   = 64  // LU block, n < 512
	nbGetrfLg = 256 // LU block, n >= 512
	nbPotrf   = 64  // recursive Cholesky leaf (Potf2 size)
	nbGeqrf   = 32  // QR/LQ/Orgqr/Ormqr block
	nbSytrf   = 48  // Bunch–Kaufman panel width
	nxGeqrf   = 64  // QR/LQ unblocked crossover on min(m, n)
	nbGetrf2  = 8   // recursive LU panel leaf (Getf2 size)
	nbSytrd   = 32  // tridiagonal reduction panel width
	nbGebrd   = 32  // bidiagonal reduction panel width
	nbGehrd   = 32  // Hessenberg reduction panel width
)

// Crossover dimensions below which the condensed-form reductions stay
// unblocked: under ~4 panels the rank-2k/GEMM trailing updates are too small
// to amortize the extra Latrd/Labrd/Lahr2 bookkeeping.
const (
	nxSytrd = 128
	nxGebrd = 128
	nxGehrd = 128
)

func init() {
	// Block sizes from the environment pass through the shared clamped
	// parser: garbage is ignored, out-of-range values degrade to the nearest
	// sane blocking instead of zero-width panels or absurd workspaces.
	const maxNB = 1 << 12
	envInt := func(name string, p *int) {
		*p = core.EnvInt(name, *p, 1, maxNB)
	}
	envInt("LA90_NB_GETRF", &nbGetrf)
	envInt("LA90_NB_GETRF", &nbGetrfLg) // one knob pins both size regimes
	envInt("LA90_NB_POTRF", &nbPotrf)
	envInt("LA90_NB_GEQRF", &nbGeqrf)
	envInt("LA90_NB_SYTRF", &nbSytrf)
	envInt("LA90_NX_GEQRF", &nxGeqrf)
	envInt("LA90_NB_GETRF2", &nbGetrf2)
	envInt("LA90_NB_TRD", &nbSytrd)
	envInt("LA90_NB_BRD", &nbGebrd)
	envInt("LA90_NB_HRD", &nbGehrd)
}

// Ilaenv returns algorithm tuning parameters, the analogue of LAPACK's
// ILAENV. ispec 1 requests the optimal block size for the named routine
// (name "GETRF2" is the leaf order below which the recursive LU panel falls
// back to Getf2); ispec 3 is the crossover dimension below which the named
// routine should use unblocked code. The LA_GETRI wrapper in the paper's
// Appendix C queries exactly this hook to size its workspace.
func Ilaenv(ispec int, name string, n1, n2, n3, n4 int) int {
	switch ispec {
	case 1: // optimal block size
		switch name {
		case "GETRF":
			if max(n1, n2) >= 512 {
				return nbGetrfLg
			}
			return nbGetrf
		case "GETRF2":
			return nbGetrf2
		case "POTRF":
			return nbPotrf
		case "GETRI":
			return 48
		case "SYTRF", "HETRF":
			return nbSytrf
		case "GEQRF", "GELQF", "ORGQR", "ORMQR", "ORGLQ", "ORMLQ":
			return nbGeqrf
		case "SYTRD", "HETRD":
			return nbSytrd
		case "GEBRD":
			return nbGebrd
		case "GEHRD":
			return nbGehrd
		}
		return 32
	case 2: // minimum block size
		return 2
	case 3: // crossover point below which unblocked code is used
		switch name {
		case "GEQRF", "GELQF":
			return nxGeqrf
		case "ORGQR", "ORMQR", "ORGLQ", "ORMLQ":
			return 8
		case "SYTRD", "HETRD":
			return nxSytrd
		case "GEBRD":
			return nxGebrd
		case "GEHRD":
			return nxGehrd
		}
		return 128
	}
	return 1
}
