// Package lapack is a from-scratch pure-Go implementation of the LAPACK 77
// computational core that the LAPACK90 interface layer (this module's public
// la and f77 packages) wraps.
//
// It follows the reference LAPACK conventions:
//
//   - column-major storage with explicit leading dimensions,
//   - an integer info return: 0 on success, -i when the i-th argument is
//     invalid (only checks that cannot be done in the wrapper layer happen
//     here), +i for numerical failures such as a zero pivot U(i,i)=0 —
//     reported 1-based exactly as in LAPACK,
//   - pivot vectors (ipiv) are 0-based Go indices internally; the public
//     f77 layer converts to LAPACK's 1-based convention.
//
// Routines are generic: a single real implementation covers LAPACK's S/D
// families (instantiated at float32 and float64) and a single complex
// implementation covers C/Z. Where an algorithm is identical up to
// conjugation the implementation is shared across all four element types.
package lapack

import "repro/internal/blas"

// Norm selects which matrix norm a xLANxx routine computes.
type Norm byte

// Norm values, matching the LAPACK character arguments.
const (
	MaxAbs        Norm = 'M' // max |a_ij| (not a consistent norm)
	OneNorm       Norm = '1' // maximum column sum
	InfNorm       Norm = 'I' // maximum row sum
	FrobeniusNorm Norm = 'F' // sqrt of sum of squares
)

// Valid reports whether n is one of the supported norms.
func (n Norm) Valid() bool {
	switch n {
	case MaxAbs, OneNorm, InfNorm, FrobeniusNorm:
		return true
	}
	return false
}

// Re-exported storage enums so lapack callers do not need to import blas
// alongside this package for every call.
type (
	// Uplo selects a triangle.
	Uplo = blas.Uplo
	// Trans selects an operation applied to a matrix operand.
	Trans = blas.Trans
	// Diag marks a unit or non-unit triangular diagonal.
	Diag = blas.Diag
	// Side selects a multiplication side.
	Side = blas.Side
)

// Enum values re-exported from package blas.
const (
	Upper     = blas.Upper
	Lower     = blas.Lower
	NoTrans   = blas.NoTrans
	TransT    = blas.TransT
	ConjTrans = blas.ConjTrans
	NonUnit   = blas.NonUnit
	Unit      = blas.Unit
	Left      = blas.Left
	Right     = blas.Right
)

// Ilaenv returns algorithm tuning parameters, the analogue of LAPACK's
// ILAENV. ispec 1 requests the optimal block size for the named routine; the
// LA_GETRI wrapper in the paper's Appendix C queries exactly this hook to
// size its workspace.
//
// Block sizes are tuned against the packed Level-3 engine in internal/blas:
// its micro-kernel efficiency keeps rising with the GEMM depth k up to the
// engine's kc, but the unblocked panel factorizations (Getf2 and friends)
// scale with nb², so the factorization sweet spot sits below the seed's 64 —
// measured on the blocked LU, nb = 48 beats both 32 and 64 for n ∈
// [512, 1024].
func Ilaenv(ispec int, name string, n1, n2, n3, n4 int) int {
	switch ispec {
	case 1: // optimal block size
		switch name {
		case "GETRF", "POTRF", "GETRI":
			return 48
		case "GEQRF", "GELQF", "ORGQR", "ORMQR":
			return 32
		case "SYTRD", "GEBRD", "GEHRD":
			return 32
		}
		return 32
	case 2: // minimum block size
		return 2
	case 3: // crossover point below which unblocked code is used
		return 128
	}
	return 1
}
