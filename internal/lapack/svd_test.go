package lapack_test

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/testutil"
)

func testGesvd[T core.Scalar](t *testing.T, m, n int) {
	t.Helper()
	rng := lapack.NewRng([4]int{m, n, 91, 92})
	a := testutil.RandGeneral[T](rng, m, n, m)
	mn := min(m, n)
	ac := append([]T(nil), a...)
	s := make([]float64, mn)
	u := make([]T, m*mn)
	vt := make([]T, mn*n)
	if info := lapack.Gesvd(tcfg(), lapack.SVDSome, lapack.SVDSome, m, n, ac, m, s, u, m, vt, mn); info != 0 {
		t.Fatalf("gesvd info=%d", info)
	}
	// Descending, non-negative singular values.
	for i := 0; i < mn; i++ {
		if s[i] < 0 {
			t.Fatalf("negative singular value %v", s[i])
		}
		if i > 0 && s[i] > s[i-1]*(1+1e-12) {
			t.Fatalf("singular values not descending at %d", i)
		}
	}
	// Orthogonality of U and V.
	if r := testutil.OrthoResidual(m, mn, u, m); r > thresh {
		t.Fatalf("U orthogonality %v", r)
	}
	v := make([]T, n*mn)
	for i := 0; i < mn; i++ {
		for j := 0; j < n; j++ {
			v[j+i*n] = core.Conj(vt[i+j*mn])
		}
	}
	if r := testutil.OrthoResidual(n, mn, v, n); r > thresh {
		t.Fatalf("V orthogonality %v", r)
	}
	// Reconstruction A = U·Σ·Vᴴ.
	us := make([]T, m*mn)
	for j := 0; j < mn; j++ {
		sj := core.FromFloat[T](s[j])
		for i := 0; i < m; i++ {
			us[i+j*m] = u[i+j*m] * sj
		}
	}
	rec := make([]T, m*n)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, m, n, mn, core.FromFloat[T](1), us, m, vt, mn, core.FromFloat[T](0), rec, m)
	if d := testutil.MaxDiff(rec, a); d > 1e4*float64(max(m, n))*core.Eps[T]() {
		t.Fatalf("SVD reconstruction diff %v", d)
	}
	// Frobenius norm invariant: ‖A‖F² = Σσᵢ².
	fro := lapack.Lange(lapack.FrobeniusNorm, m, n, a, m)
	ss := 0.0
	for _, v := range s {
		ss += v * v
	}
	if math.Abs(fro*fro-ss) > 1e-8*(1+fro*fro) {
		scale := core.Eps[T]() / core.EpsDouble
		if math.Abs(fro*fro-ss) > 1e-8*scale*(1+fro*fro) {
			t.Fatalf("Frobenius invariant: %v vs %v", fro*fro, ss)
		}
	}
}

func TestGesvd(t *testing.T) {
	for _, mn := range [][2]int{{1, 1}, {2, 2}, {5, 5}, {12, 7}, {7, 12}, {30, 30}, {40, 10}, {10, 40}} {
		t.Run("float64", func(t *testing.T) { testGesvd[float64](t, mn[0], mn[1]) })
		t.Run("complex128", func(t *testing.T) { testGesvd[complex128](t, mn[0], mn[1]) })
	}
	t.Run("float32", func(t *testing.T) { testGesvd[float32](t, 9, 6) })
	t.Run("complex64", func(t *testing.T) { testGesvd[complex64](t, 6, 9) })
}

func TestGesvdKnownValues(t *testing.T) {
	// diag(3, 2, 1) padded: singular values are 3, 2, 1.
	m, n := 5, 3
	a := make([]float64, m*n)
	a[0], a[1+m], a[2+2*m] = 3, -2, 1
	s := make([]float64, n)
	if info := lapack.Gesvd(tcfg(), lapack.SVDNone, lapack.SVDNone, m, n, a, m, s, nil, 0, nil, 0); info != 0 {
		t.Fatalf("info=%d", info)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Fatalf("s[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestGesvdFullU(t *testing.T) {
	m, n := 8, 5
	rng := lapack.NewRng([4]int{3, 3, 9, 9})
	a := testutil.RandGeneral[float64](rng, m, n, m)
	ac := append([]float64(nil), a...)
	s := make([]float64, n)
	u := make([]float64, m*m)
	vt := make([]float64, n*n)
	if info := lapack.Gesvd(tcfg(), lapack.SVDAll, lapack.SVDAll, m, n, ac, m, s, u, m, vt, n); info != 0 {
		t.Fatalf("info=%d", info)
	}
	if r := testutil.OrthoResidual(m, m, u, m); r > thresh {
		t.Fatalf("full U orthogonality %v", r)
	}
	if r := testutil.OrthoResidual(n, n, vt, n); r > thresh {
		t.Fatalf("full VT orthogonality %v", r)
	}
}

func TestBdsqrDiagonal(t *testing.T) {
	// Already-diagonal input: values must just be sorted descending.
	n := 4
	d := []float64{1, 3, 2, 5}
	e := []float64{0, 0, 0}
	if info := lapack.Bdsqr[float64](tcfg(), n, d, e, nil, 0, 0, nil, 0, 0); info != 0 {
		t.Fatalf("info=%d", info)
	}
	want := []float64{5, 3, 2, 1}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-14 {
			t.Fatalf("d = %v", d)
		}
	}
}

func testGelss[T core.Scalar](t *testing.T, m, n int) {
	t.Helper()
	rng := lapack.NewRng([4]int{m, n, 77, 78})
	nrhs := 2
	a := testutil.RandGeneral[T](rng, m, n, m)
	ldb := max(m, n)
	b := make([]T, ldb*nrhs)
	lapack.Larnv(2, rng, m, b)
	lapack.Larnv(2, rng, m, b[ldb:])
	b0 := append([]T(nil), b...)
	ac := append([]T(nil), a...)
	s := make([]float64, min(m, n))
	rank, info := lapack.Gelss(tcfg(), m, n, nrhs, ac, m, b, ldb, s, -1)
	if info != 0 {
		t.Fatalf("gelss info=%d", info)
	}
	if rank != min(m, n) {
		t.Fatalf("rank=%d", rank)
	}
	// Normal equations: Aᴴ(b − A·x) = 0.
	one := core.FromFloat[T](1)
	for j := 0; j < nrhs; j++ {
		res := make([]T, m)
		copy(res, b0[j*ldb:j*ldb+m])
		blas.Gemv(tcfg(), blas.NoTrans, m, n, -one, a, m, b[j*ldb:], 1, one, res, 1)
		g := make([]T, n)
		blas.Gemv(tcfg(), blas.ConjTrans, m, n, one, a, m, res, 1, core.FromFloat[T](0), g, 1)
		if nrm := blas.Nrm2(n, g, 1); nrm > 2e5*core.Eps[T]() {
			t.Fatalf("gelss normal equations %v", nrm)
		}
	}
}

func TestGelss(t *testing.T) {
	for _, mn := range [][2]int{{10, 4}, {4, 10}, {8, 8}} {
		t.Run("float64", func(t *testing.T) { testGelss[float64](t, mn[0], mn[1]) })
		t.Run("complex128", func(t *testing.T) { testGelss[complex128](t, mn[0], mn[1]) })
	}
}

func TestGelssRankDeficient(t *testing.T) {
	// Rank-2 matrix; gelss must report rank 2 and produce the minimum-norm
	// solution identical to gelsx.
	m, n, r := 9, 6, 2
	rng := lapack.NewRng([4]int{2, 9, 2, 9})
	uu := testutil.RandGeneral[float64](rng, m, r, m)
	vv := testutil.RandGeneral[float64](rng, r, n, r)
	a := make([]float64, m*n)
	blas.Gemm(tcfg(), blas.NoTrans, blas.NoTrans, m, n, r, 1, uu, m, vv, r, 0, a, m)
	b := make([]float64, max(m, n))
	lapack.Larnv(2, rng, m, b)

	ac := append([]float64(nil), a...)
	bss := append([]float64(nil), b...)
	s := make([]float64, n)
	rank, info := lapack.Gelss(tcfg(), m, n, 1, ac, m, bss, max(m, n), s, 1e-8)
	if info != 0 || rank != r {
		t.Fatalf("gelss rank=%d info=%d", rank, info)
	}
	ac2 := append([]float64(nil), a...)
	bsx := append([]float64(nil), b...)
	jpvt := make([]int, n)
	rank2 := lapack.Gelsx(tcfg(), m, n, 1, ac2, m, jpvt, 1e-8, bsx, max(m, n))
	if rank2 != r {
		t.Fatalf("gelsx rank=%d", rank2)
	}
	for i := 0; i < n; i++ {
		if math.Abs(bss[i]-bsx[i]) > 1e-8 {
			t.Fatalf("gelss vs gelsx solution differ at %d: %v vs %v", i, bss[i], bsx[i])
		}
	}
}
