package lapack

import (
	"math"

	"repro/internal/core"
)

// Pttrf computes the L·D·Lᴴ factorization of a symmetric/Hermitian positive
// definite tridiagonal matrix (xPTTRF). d (length n) holds the real
// diagonal and e (length n-1) the sub-diagonal; on exit d holds the diagonal
// of D and e the sub-diagonal multipliers of unit L. Returns i > 0 if the
// leading minor of order i is not positive definite.
func Pttrf[T core.Scalar](n int, d []float64, e []T) int {
	for i := 0; i < n-1; i++ {
		if d[i] <= 0 || math.IsNaN(d[i]) {
			return i + 1
		}
		ei := e[i]
		e[i] = core.FromComplex[T](core.ToComplex(ei) / complex(d[i], 0))
		d[i+1] -= core.Re(e[i])*core.Re(ei) + core.Im(e[i])*core.Im(ei)
	}
	if n > 0 && d[n-1] <= 0 {
		return n
	}
	return 0
}

// Pttrs solves A·X = B using the L·D·Lᴴ factorization from Pttrf (xPTTRS).
func Pttrs[T core.Scalar](n, nrhs int, d []float64, e []T, b []T, ldb int) {
	for j := 0; j < nrhs; j++ {
		col := b[j*ldb:]
		// Forward solve L·y = b.
		for i := 1; i < n; i++ {
			col[i] -= e[i-1] * col[i-1]
		}
		// Diagonal solve and back substitution Lᴴ·x = D⁻¹·y.
		col[n-1] = core.FromComplex[T](core.ToComplex(col[n-1]) / complex(d[n-1], 0))
		for i := n - 2; i >= 0; i-- {
			col[i] = core.FromComplex[T](core.ToComplex(col[i])/complex(d[i], 0)) - core.Conj(e[i])*col[i+1]
		}
	}
}

// Ptsv solves A·X = B for a positive definite tridiagonal matrix (the
// xPTSV driver). d and e are overwritten by the factorization.
func Ptsv[T core.Scalar](n, nrhs int, d []float64, e []T, b []T, ldb int) int {
	info := Pttrf(n, d, e)
	if info == 0 {
		Pttrs(n, nrhs, d, e, b, ldb)
	}
	return info
}

// Ptcon estimates the reciprocal 1-norm condition number of a positive
// definite tridiagonal matrix from its factorization (xPTCON-style,
// computed with the norm estimator applied to the factored solves).
func Ptcon[T core.Scalar](n int, d []float64, e []T, anorm float64) float64 {
	if n == 0 {
		return 1
	}
	if anorm == 0 {
		return 0
	}
	ainvnm := Lacn2(n, func(conjTrans bool, x []T) {
		Pttrs(n, 1, d, e, x, n)
	})
	return rcondFromEst(ainvnm, anorm)
}

// ptmv computes y = alpha·A·x + beta·y for the Hermitian tridiagonal matrix
// with real diagonal d and sub-diagonal e.
func ptmv[T core.Scalar](n int, d []float64, e []T, alpha T, x []T, beta T, y []T) {
	for i := 0; i < n; i++ {
		s := core.FromFloat[T](d[i]) * x[i]
		if i > 0 {
			s += e[i-1] * x[i-1]
		}
		if i < n-1 {
			s += core.Conj(e[i]) * x[i+1]
		}
		if beta == 0 {
			y[i] = alpha * s
		} else {
			y[i] = alpha*s + beta*y[i]
		}
	}
}

// Ptrfs iteratively refines the solution of a positive definite tridiagonal
// system and returns error bounds (xPTRFS). d/e are the original matrix and
// df/ef its factorization.
func Ptrfs[T core.Scalar](n, nrhs int, d []float64, e []T, df []float64, ef []T, b []T, ldb int, x []T, ldx int, ferr, berr []float64) {
	rfs(NoTrans, n, nrhs,
		func(_ Trans, alpha T, x []T, beta T, y []T) { ptmv(n, d, e, alpha, x, beta, y) },
		func(_ Trans, xa, y []float64) {
			for i := 0; i < n; i++ {
				s := math.Abs(d[i]) * xa[i]
				if i > 0 {
					s += core.Abs1(e[i-1]) * xa[i-1]
				}
				if i < n-1 {
					s += core.Abs1(e[i]) * xa[i+1]
				}
				y[i] += s
			}
		},
		func(_ Trans, r []T) { Pttrs(n, 1, df, ef, r, n) },
		b, ldb, x, ldx, ferr, berr)
}

// PtsvxResult carries the outputs of Ptsvx.
type PtsvxResult struct {
	RCond float64
	Ferr  []float64
	Berr  []float64
	Info  int
}

// Ptsvx is the expert driver for positive definite tridiagonal systems
// (xPTSVX): factorization, solve, refinement and condition estimation. df
// and ef receive the factorization (or supply it when fact is FactFact).
func Ptsvx[T core.Scalar](fact Fact, n, nrhs int, d []float64, e []T, df []float64, ef []T, b []T, ldb int, x []T, ldx int) PtsvxResult {
	res := PtsvxResult{Ferr: make([]float64, nrhs), Berr: make([]float64, nrhs)}
	if fact != FactFact {
		copy(df[:n], d[:n])
		if n > 1 {
			copy(ef[:n-1], e[:n-1])
		}
		res.Info = Pttrf(n, df, ef)
	}
	if res.Info > 0 {
		return res
	}
	// 1-norm of the Hermitian tridiagonal matrix.
	anorm := 0.0
	for i := 0; i < n; i++ {
		s := math.Abs(d[i])
		if i > 0 {
			s += core.Abs1(e[i-1])
		}
		if i < n-1 {
			s += core.Abs1(e[i])
		}
		anorm = math.Max(anorm, s)
	}
	res.RCond = Ptcon(n, df, ef, anorm)
	Lacpy('A', n, nrhs, b, ldb, x, ldx)
	Pttrs(n, nrhs, df, ef, x, ldx)
	Ptrfs(n, nrhs, d, e, df, ef, b, ldb, x, ldx, res.Ferr, res.Berr)
	if res.RCond < core.Eps[T]() {
		res.Info = n + 1
	}
	return res
}
