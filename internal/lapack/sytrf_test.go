package lapack_test

import (
	"testing"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/testutil"
)

// randSym builds a random symmetric (not definite) matrix; for complex T it
// is complex symmetric (Aᵀ = A).
func randSym[T core.Scalar](rng *lapack.Rng, n, lda int) []T {
	a := make([]T, lda*n)
	col := make([]T, n)
	for j := 0; j < n; j++ {
		lapack.Larnv(2, rng, n, col)
		for i := 0; i <= j; i++ {
			a[i+j*lda] = col[i]
			a[j+i*lda] = col[i]
		}
	}
	return a
}

// randHerm builds a random Hermitian indefinite matrix.
func randHerm[T core.Scalar](rng *lapack.Rng, n, lda int) []T {
	a := make([]T, lda*n)
	col := make([]T, n)
	for j := 0; j < n; j++ {
		lapack.Larnv(2, rng, n, col)
		for i := 0; i < j; i++ {
			a[i+j*lda] = col[i]
			a[j+i*lda] = core.Conj(col[i])
		}
		a[j+j*lda] = core.FromFloat[T](core.Re(col[j]))
	}
	return a
}

func symMul[T core.Scalar](uplo lapack.Uplo, herm bool, n, nrhs int, a []T, lda int, x []T, ldx int, b []T, ldb int) {
	if herm {
		blas.Hemm(tcfg(), blas.Left, blas.Uplo(uplo), n, nrhs, core.FromFloat[T](1), a, lda, x, ldx, core.FromFloat[T](0), b, ldb)
	} else {
		blas.Symm(tcfg(), blas.Left, blas.Uplo(uplo), n, nrhs, core.FromFloat[T](1), a, lda, x, ldx, core.FromFloat[T](0), b, ldb)
	}
}

func testSysv[T core.Scalar](t *testing.T, uplo lapack.Uplo, n int) {
	t.Helper()
	nrhs := 2
	rng := lapack.NewRng([4]int{int(uplo), n, 11, 13})
	lda := n + 1
	a := randSym[T](rng, n, lda)
	xTrue := testutil.RandGeneral[T](rng, n, nrhs, n)
	b := make([]T, n*nrhs)
	symMul(uplo, false, n, nrhs, a, lda, xTrue, n, b, n)
	af := make([]T, lda*n)
	lapack.Lacpy('A', n, n, a, lda, af, lda)
	ipiv := make([]int, n)
	sol := append([]T(nil), b...)
	if info := lapack.Sysv(tcfg(), uplo, n, nrhs, af, lda, ipiv, sol, n); info != 0 {
		t.Fatalf("sysv info=%d", info)
	}
	if r := testutil.SolveResidual(n, nrhs, symFullSym(uplo, n, a, lda), n, sol, n, b, n); r > thresh {
		t.Fatalf("sysv residual %v", r)
	}
	// Condition estimate and refinement.
	anorm := lapack.Lansy(lapack.OneNorm, uplo, n, a, lda)
	if rc := lapack.Sycon(tcfg(), uplo, n, af, lda, ipiv, anorm); rc <= 0 || rc > 1.000001 {
		t.Fatalf("sycon rcond=%v", rc)
	}
	ferr := make([]float64, nrhs)
	berr := make([]float64, nrhs)
	lapack.Syrfs(tcfg(), uplo, n, nrhs, a, lda, af, lda, ipiv, b, n, sol, n, ferr, berr)
	for j := 0; j < nrhs; j++ {
		if berr[j] > 100*core.Eps[T]() {
			t.Fatalf("syrfs berr=%v", berr[j])
		}
	}
}

func TestSysv(t *testing.T) {
	for _, uplo := range []lapack.Uplo{lapack.Upper, lapack.Lower} {
		for _, n := range []int{1, 2, 3, 8, 25, 60} {
			t.Run("float64", func(t *testing.T) { testSysv[float64](t, uplo, n) })
			t.Run("complex128", func(t *testing.T) { testSysv[complex128](t, uplo, n) })
		}
		t.Run("float32", func(t *testing.T) { testSysv[float32](t, uplo, 12) })
	}
}

func testHesv[T core.Scalar](t *testing.T, uplo lapack.Uplo, n int) {
	t.Helper()
	nrhs := 2
	rng := lapack.NewRng([4]int{int(uplo), n, 17, 19})
	lda := n + 1
	a := randHerm[T](rng, n, lda)
	xTrue := testutil.RandGeneral[T](rng, n, nrhs, n)
	b := make([]T, n*nrhs)
	symMul(uplo, true, n, nrhs, a, lda, xTrue, n, b, n)
	af := make([]T, lda*n)
	lapack.Lacpy('A', n, n, a, lda, af, lda)
	ipiv := make([]int, n)
	sol := append([]T(nil), b...)
	if info := lapack.Hesv(tcfg(), uplo, n, nrhs, af, lda, ipiv, sol, n); info != 0 {
		t.Fatalf("hesv info=%d", info)
	}
	if r := testutil.SolveResidual(n, nrhs, symFull(uplo, n, a, lda), n, sol, n, b, n); r > thresh {
		t.Fatalf("hesv residual %v", r)
	}
	anorm := lapack.Lansy(lapack.OneNorm, uplo, n, a, lda)
	if rc := lapack.Hecon(tcfg(), uplo, n, af, lda, ipiv, anorm); rc <= 0 || rc > 1.000001 {
		t.Fatalf("hecon rcond=%v", rc)
	}
}

func TestHesv(t *testing.T) {
	for _, uplo := range []lapack.Uplo{lapack.Upper, lapack.Lower} {
		for _, n := range []int{1, 2, 3, 8, 25, 60} {
			t.Run("complex128", func(t *testing.T) { testHesv[complex128](t, uplo, n) })
		}
		t.Run("complex64", func(t *testing.T) { testHesv[complex64](t, uplo, 10) })
		// For real types Hesv must agree with Sysv semantics.
		t.Run("float64", func(t *testing.T) { testHesv[float64](t, uplo, 14) })
	}
}

func TestSysvForces2x2Pivots(t *testing.T) {
	// A zero-diagonal symmetric matrix forces 2×2 pivot blocks.
	n := 6
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			v := float64((i+1)*(j+2)%7 - 3)
			a[i+j*n] = v
			a[j+i*n] = v
		}
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = float64(i) - 2.5
	}
	b := make([]float64, n)
	blas.Symv(blas.Upper, n, 1, a, n, xTrue, 1, 0, b, 1)
	af := append([]float64(nil), a...)
	ipiv := make([]int, n)
	if info := lapack.Sysv(tcfg(), lapack.Upper, n, 1, af, n, ipiv, b, n); info != 0 {
		t.Fatalf("sysv info=%d", info)
	}
	has2x2 := false
	for _, p := range ipiv {
		if p < 0 {
			has2x2 = true
		}
	}
	if !has2x2 {
		t.Fatal("expected at least one 2x2 pivot")
	}
	if d := testutil.MaxDiff(b, xTrue); d > 1e-10 {
		t.Fatalf("solution error %v", d)
	}
}

func TestSysvSingular(t *testing.T) {
	n := 4
	a := make([]float64, n*n) // zero matrix
	ipiv := make([]int, n)
	b := make([]float64, n)
	if info := lapack.Sysv(tcfg(), lapack.Upper, n, 1, a, n, ipiv, b, n); info <= 0 {
		t.Fatalf("expected positive info, got %d", info)
	}
}

func TestSysvx(t *testing.T) {
	n, nrhs := 18, 2
	rng := lapack.NewRng([4]int{21, 22, 23, 24})
	a := randSym[float64](rng, n, n)
	xTrue := testutil.RandGeneral[float64](rng, n, nrhs, n)
	b := make([]float64, n*nrhs)
	symMul(lapack.Upper, false, n, nrhs, a, n, xTrue, n, b, n)
	af := make([]float64, n*n)
	ipiv := make([]int, n)
	x := make([]float64, n*nrhs)
	res := lapack.Sysvx(tcfg(), lapack.FactNone, lapack.Upper, n, nrhs, a, n, af, n, ipiv, b, n, x, n)
	if res.Info != 0 {
		t.Fatalf("sysvx info=%d", res.Info)
	}
	if d := testutil.MaxDiff(x, xTrue); d > 1e-8 {
		t.Fatalf("sysvx error %v", d)
	}
}

func TestHesvx(t *testing.T) {
	n, nrhs := 14, 2
	rng := lapack.NewRng([4]int{31, 32, 33, 34})
	a := randHerm[complex128](rng, n, n)
	xTrue := testutil.RandGeneral[complex128](rng, n, nrhs, n)
	b := make([]complex128, n*nrhs)
	symMul(lapack.Lower, true, n, nrhs, a, n, xTrue, n, b, n)
	af := make([]complex128, n*n)
	ipiv := make([]int, n)
	x := make([]complex128, n*nrhs)
	res := lapack.Hesvx(tcfg(), lapack.FactNone, lapack.Lower, n, nrhs, a, n, af, n, ipiv, b, n, x, n)
	if res.Info != 0 {
		t.Fatalf("hesvx info=%d", res.Info)
	}
	if d := testutil.MaxDiff(x, xTrue); d > 1e-8 {
		t.Fatalf("hesvx error %v", d)
	}
}

func testSpsv[T core.Scalar](t *testing.T, uplo lapack.Uplo, n int, herm bool) {
	t.Helper()
	nrhs := 2
	rng := lapack.NewRng([4]int{41, int(uplo), n, 1})
	var a []T
	if herm {
		a = randHerm[T](rng, n, n)
	} else {
		a = randSym[T](rng, n, n)
	}
	ap := packTri(uplo, n, a, n)
	xTrue := testutil.RandGeneral[T](rng, n, nrhs, n)
	b := make([]T, n*nrhs)
	symMul(uplo, herm, n, nrhs, a, n, xTrue, n, b, n)
	apf := append([]T(nil), ap...)
	ipiv := make([]int, n)
	sol := append([]T(nil), b...)
	var info int
	if herm {
		info = lapack.Hpsv(tcfg(), uplo, n, nrhs, apf, ipiv, sol, n)
	} else {
		info = lapack.Spsv(tcfg(), uplo, n, nrhs, apf, ipiv, sol, n)
	}
	if info != 0 {
		t.Fatalf("sp/hpsv info=%d", info)
	}
	full := symFullSym(uplo, n, a, n)
	if herm {
		full = symFull(uplo, n, a, n)
	}
	if r := testutil.SolveResidual(n, nrhs, full, n, sol, n, b, n); r > thresh {
		t.Fatalf("sp/hpsv residual %v", r)
	}
	anorm := lapack.Lansp(lapack.OneNorm, uplo, n, ap)
	var rc float64
	if herm {
		rc = lapack.Hpcon(tcfg(), uplo, n, apf, ipiv, anorm)
	} else {
		rc = lapack.Spcon(tcfg(), uplo, n, apf, ipiv, anorm)
	}
	if rc <= 0 || rc > 1.000001 {
		t.Fatalf("sp/hpcon rcond=%v", rc)
	}
	// Refinement.
	ferr := make([]float64, nrhs)
	berr := make([]float64, nrhs)
	if herm {
		lapack.Hprfs(tcfg(), uplo, n, nrhs, ap, apf, ipiv, b, n, sol, n, ferr, berr)
	} else {
		lapack.Sprfs(tcfg(), uplo, n, nrhs, ap, apf, ipiv, b, n, sol, n, ferr, berr)
	}
	for j := 0; j < nrhs; j++ {
		if berr[j] > 100*core.Eps[T]() {
			t.Fatalf("sp/hprfs berr=%v", berr[j])
		}
	}
}

func TestSpsvHpsv(t *testing.T) {
	for _, uplo := range []lapack.Uplo{lapack.Upper, lapack.Lower} {
		for _, n := range []int{1, 5, 20} {
			t.Run("spsv/float64", func(t *testing.T) { testSpsv[float64](t, uplo, n, false) })
			t.Run("spsv/complex128", func(t *testing.T) { testSpsv[complex128](t, uplo, n, false) })
			t.Run("hpsv/complex128", func(t *testing.T) { testSpsv[complex128](t, uplo, n, true) })
		}
	}
}
