// Package core provides the scalar-type machinery that gives the rest of the
// library its four-way genericity over float32, float64, complex64 and
// complex128 — the Go analogue of the LAPACK90 paper's generic interfaces,
// in which "no distinction is made between single and double precision or
// between real and complex data types".
//
// Two constraint families are used throughout the module:
//
//   - Float  covers the real element types (the LAPACK S and D families).
//   - Cmplx  covers the complex element types (the LAPACK C and Z families).
//   - Scalar is their union and is used wherever an algorithm needs only
//     ring operations (+, -, *) that Go defines natively for all four types.
//
// The constraints intentionally do not use ~ (underlying-type) terms: several
// helpers rely on exact dynamic types for dispatch, and LAPACK-style numeric
// code has no use for named scalar types.
package core

import "math"

// Float is the constraint for real element types (LAPACK's S and D types).
type Float interface {
	float32 | float64
}

// Cmplx is the constraint for complex element types (LAPACK's C and Z types).
type Cmplx interface {
	complex64 | complex128
}

// Scalar is the constraint covering every element type the library supports.
type Scalar interface {
	float32 | float64 | complex64 | complex128
}

// Machine-precision constants, following the FORTRAN 90 EPSILON convention
// used by the paper (EPSILON(1.0) = 2**-23 = 1.1921e-07 for single
// precision; the paper's Appendix F prints exactly this value).
const (
	EpsSingle = 0x1p-23 // 1.1920929e-07
	EpsDouble = 0x1p-52 // 2.220446049250313e-16
)

// IsComplex reports whether T is one of the complex element types.
func IsComplex[T Scalar]() bool {
	var z T
	switch any(z).(type) {
	case complex64, complex128:
		return true
	}
	return false
}

// Eps returns the machine epsilon (FORTRAN 90 EPSILON convention) of the
// real type underlying T: 2**-23 for float32/complex64 and 2**-52 for
// float64/complex128.
func Eps[T Scalar]() float64 {
	var z T
	switch any(z).(type) {
	case float32, complex64:
		return EpsSingle
	}
	return EpsDouble
}

// SafeMin returns the smallest positive normalized number of the real type
// underlying T, the LAPACK xLAMCH('S') value.
func SafeMin[T Scalar]() float64 {
	var z T
	switch any(z).(type) {
	case float32, complex64:
		return math.SmallestNonzeroFloat32 * 0x1p23 // 2**-126
	}
	return math.SmallestNonzeroFloat64 * 0x1p52 // 2**-1022
}

// Overflow returns the largest finite number of the real type underlying T,
// the LAPACK xLAMCH('O') value.
func Overflow[T Scalar]() float64 {
	var z T
	switch any(z).(type) {
	case float32, complex64:
		return math.MaxFloat32
	}
	return math.MaxFloat64
}

// Abs returns |x| as a float64: the modulus for complex types and the
// absolute value for real types.
func Abs[T Scalar](x T) float64 {
	switch v := any(x).(type) {
	case float32:
		return math.Abs(float64(v))
	case float64:
		return math.Abs(v)
	case complex64:
		return hypot(float64(real(v)), float64(imag(v)))
	case complex128:
		return hypot(real(v), imag(v))
	}
	return 0
}

// Abs1 returns the LAPACK CABS1 measure |re(x)| + |im(x)| used for pivot
// selection in complex factorizations; for real types it equals |x|.
func Abs1[T Scalar](x T) float64 {
	switch v := any(x).(type) {
	case float32:
		return math.Abs(float64(v))
	case float64:
		return math.Abs(v)
	case complex64:
		return math.Abs(float64(real(v))) + math.Abs(float64(imag(v)))
	case complex128:
		return math.Abs(real(v)) + math.Abs(imag(v))
	}
	return 0
}

// Conj returns the complex conjugate of x; real values are returned
// unchanged.
func Conj[T Scalar](x T) T {
	switch v := any(x).(type) {
	case complex64:
		return any(complex(real(v), -imag(v))).(T)
	case complex128:
		return any(complex(real(v), -imag(v))).(T)
	}
	return x
}

// Re returns the real part of x as a float64.
func Re[T Scalar](x T) float64 {
	switch v := any(x).(type) {
	case float32:
		return float64(v)
	case float64:
		return v
	case complex64:
		return float64(real(v))
	case complex128:
		return real(v)
	}
	return 0
}

// Im returns the imaginary part of x as a float64 (zero for real types).
func Im[T Scalar](x T) float64 {
	switch v := any(x).(type) {
	case complex64:
		return float64(imag(v))
	case complex128:
		return imag(v)
	}
	return 0
}

// FromFloat converts a float64 into the element type T (imaginary part zero
// for complex T).
func FromFloat[T Scalar](v float64) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(v)).(T)
	case float64:
		return any(v).(T)
	case complex64:
		return any(complex(float32(v), 0)).(T)
	case complex128:
		return any(complex(v, 0)).(T)
	}
	return z
}

// FromComplex converts a complex128 into the element type T. For real T the
// imaginary part is discarded; callers in real code paths only pass real
// values.
func FromComplex[T Scalar](v complex128) T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(real(v))).(T)
	case float64:
		return any(real(v)).(T)
	case complex64:
		return any(complex64(v)).(T)
	case complex128:
		return any(v).(T)
	}
	return z
}

// ToComplex converts x to complex128.
func ToComplex[T Scalar](x T) complex128 {
	switch v := any(x).(type) {
	case float32:
		return complex(float64(v), 0)
	case float64:
		return complex(v, 0)
	case complex64:
		return complex128(v)
	case complex128:
		return v
	}
	return 0
}

// Div returns x/y with the LAPACK xLADIV scaling for complex types, which
// avoids intermediate overflow for well-scaled operands.
func Div[T Scalar](x, y T) T {
	if !IsComplex[T]() {
		return FromFloat[T](Re(x) / Re(y))
	}
	a, b := Re(x), Im(x)
	c, d := Re(y), Im(y)
	var p, q float64
	if math.Abs(d) < math.Abs(c) {
		e := d / c
		f := c + d*e
		p = (a + b*e) / f
		q = (b - a*e) / f
	} else {
		e := c / d
		f := d + c*e
		p = (a*e + b) / f
		q = (b*e - a) / f
	}
	return FromComplex[T](complex(p, q))
}

// hypot is math.Hypot without the special-case overhead for NaN propagation
// differences; it computes sqrt(a*a + b*b) robustly.
func hypot(a, b float64) float64 {
	return math.Hypot(a, b)
}

// Hypot3 computes sqrt(x*x + y*y + z*z) without destructive underflow or
// overflow (LAPACK xLAPY3).
func Hypot3(x, y, z float64) float64 {
	x, y, z = math.Abs(x), math.Abs(y), math.Abs(z)
	w := math.Max(x, math.Max(y, z))
	if w == 0 {
		return 0
	}
	xw, yw, zw := x/w, y/w, z/w
	return w * math.Sqrt(xw*xw+yw*yw+zw*zw)
}

// Sign returns the value of a with the sign of b (FORTRAN SIGN intrinsic,
// used pervasively by LAPACK's Householder and rotation kernels).
func Sign(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}
