package core

import (
	"os"
	"strconv"
)

// EnvInt reads an integer tuning parameter from the environment with the
// hardening policy shared by every LA90_* knob: a missing, empty, or
// non-numeric value leaves the default untouched, a parsable value is clamped
// into [lo, hi]. Tuning knobs must never be able to crash or wedge the
// process — a deployment typo like LA90_NUM_THREADS=1e9 or a negative block
// size degrades to the nearest sane setting instead of a multi-gigabyte
// allocation or a zero-width loop.
func EnvInt(name string, def, lo, hi int) int {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return ClampInt(n, lo, hi)
}

// ClampInt returns n limited to the inclusive range [lo, hi].
func ClampInt(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}
