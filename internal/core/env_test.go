package core

import "testing"

func TestEnvInt(t *testing.T) {
	const name = "LA90_TEST_ENVINT"
	cases := []struct {
		val         string
		def, lo, hi int
		want        int
	}{
		{"", 64, 1, 1024, 64},                    // unset/empty keeps the default
		{"128", 64, 1, 1024, 128},                // in-range value accepted
		{"1", 64, 1, 1024, 1},                    // boundary low
		{"1024", 64, 1, 1024, 1024},              // boundary high
		{"0", 64, 1, 1024, 1},                    // non-positive clamps up
		{"-7", 64, 1, 1024, 1},                   // negative clamps up
		{"999999999", 64, 1, 1024, 1024},         // absurd clamps down
		{"1e9", 64, 1, 1024, 64},                 // not Atoi-parsable: ignored
		{"banana", 64, 1, 1024, 64},              // garbage ignored
		{"  8", 64, 1, 1024, 64},                 // whitespace is not forgiven by Atoi
		{"9223372036854775808", 64, 1, 1024, 64}, // overflows int64: ignored
	}
	for _, c := range cases {
		t.Setenv(name, c.val)
		if got := EnvInt(name, c.def, c.lo, c.hi); got != c.want {
			t.Errorf("EnvInt(%q=%q, def=%d, [%d,%d]) = %d, want %d",
				name, c.val, c.def, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampInt(t *testing.T) {
	if ClampInt(5, 1, 10) != 5 || ClampInt(-5, 1, 10) != 1 || ClampInt(50, 1, 10) != 10 {
		t.Fatal("ClampInt mis-clamps")
	}
}
