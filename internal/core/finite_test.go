package core

import (
	"math"
	"testing"
)

func testAllFinite[T Scalar](t *testing.T, name string) {
	t.Run(name, func(t *testing.T) {
		nan := NaN[T]()
		if IsFinite(nan) {
			t.Fatal("IsFinite(NaN) = true")
		}
		inf := FromFloat[T](math.Inf(1))
		if IsFinite(inf) {
			t.Fatal("IsFinite(+Inf) = true")
		}
		if !IsFinite(FromFloat[T](1.5)) || !IsFinite(FromFloat[T](0)) {
			t.Fatal("IsFinite rejects a finite value")
		}

		// Every length crosses the unrolled/tail boundary differently; every
		// position must be caught.
		for n := 0; n <= 9; n++ {
			x := make([]T, n)
			for i := range x {
				x[i] = FromFloat[T](float64(i) - 3)
			}
			if !AllFinite(x) {
				t.Fatalf("AllFinite(finite len %d) = false", n)
			}
			for p := 0; p < n; p++ {
				for _, bad := range []T{nan, inf, FromFloat[T](math.Inf(-1))} {
					save := x[p]
					x[p] = bad
					if AllFinite(x) {
						t.Fatalf("AllFinite missed %v at position %d of %d", bad, p, n)
					}
					x[p] = save
				}
			}
		}

		// Huge-but-finite values must not trip the scan.
		big := FromFloat[T](Overflow[T]())
		if !AllFinite([]T{big, big, big, big, big}) {
			t.Fatal("AllFinite rejects the overflow threshold value")
		}
	})
}

func TestAllFinite(t *testing.T) {
	testAllFinite[float32](t, "float32")
	testAllFinite[float64](t, "float64")
	testAllFinite[complex64](t, "complex64")
	testAllFinite[complex128](t, "complex128")
}

// TestAllFiniteComplexComponents checks that a non-finite value hiding in
// either component of a complex element is caught.
func TestAllFiniteComplexComponents(t *testing.T) {
	nan := math.NaN()
	for _, x := range []complex128{complex(nan, 0), complex(0, nan), complex(math.Inf(1), 0), complex(0, math.Inf(-1))} {
		if AllFinite([]complex128{1, x, 2}) {
			t.Errorf("AllFinite missed %v", x)
		}
		if IsFinite(x) {
			t.Errorf("IsFinite(%v) = true", x)
		}
	}
}

func TestNaN(t *testing.T) {
	if v := NaN[float64](); !math.IsNaN(v) {
		t.Fatalf("NaN[float64]() = %v", v)
	}
	if v := NaN[float32](); !math.IsNaN(float64(v)) {
		t.Fatalf("NaN[float32]() = %v", v)
	}
	if v := NaN[complex128](); !math.IsNaN(real(v)) || !math.IsNaN(imag(v)) {
		t.Fatalf("NaN[complex128]() = %v", v)
	}
	if v := NaN[complex64](); !math.IsNaN(float64(real(v))) {
		t.Fatalf("NaN[complex64]() = %v", v)
	}
}
