package core

import (
	"context"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config is the per-call execution context of the whole numerical stack: one
// immutable value carrying every tuning and policy knob the la → lapack →
// blas layers used to read from package globals, plus an optional
// context.Context for cooperative cancellation.
//
// A Config is captured exactly once, at the la API boundary (from the
// process-wide default merged with per-call options), and then passed
// explicitly down through every lapack driver into the blas engines. Nothing
// below the boundary re-reads ambient state mid-kernel, so two concurrent
// calls with different Configs — different thread budgets, block sizes,
// precision policies — never observe each other.
//
// Configs are immutable by convention: once a *Config has been handed to a
// driver it must never be written again. Derive variants with With, which
// copies, mutates and re-clamps.
type Config struct {
	// Threads is the maximum number of goroutines the Level-3 engines may
	// use for this call. 1 forces fully serial execution. The floating-point
	// schedule never depends on it: results are bit-identical at any budget.
	Threads int

	// GemmMC, GemmKC, GemmNC are the packed-engine cache block sizes
	// (element counts calibrated for float64; other types are re-scaled so
	// packed-panel byte footprints stay constant — see blas.blockFor).
	GemmMC, GemmKC, GemmNC int

	// GemmSmallDim is the pack-free small-matrix crossover: a NoTrans
	// product with every dimension at or below it runs BLASFEO-style
	// register kernels directly on the strided operands. 0 disables the
	// path.
	GemmSmallDim int

	// GemmParallelMinVol is the m·n·k multiply volume below which Level-3
	// operations stay serial even when Threads > 1.
	GemmParallelMinVol int

	// GemvParallelMinVol is the m·n element count below which Gemv stays
	// serial.
	GemvParallelMinVol int

	// Ilaenv block-size overrides for the blocked factorizations and
	// condensed-form reductions (see lapack.Ilaenv).
	NBGetrf   int // LU block, n < 512
	NBGetrfLg int // LU block, n >= 512
	NBPotrf   int // recursive Cholesky leaf
	NBGeqrf   int // QR/LQ/Orgqr/Ormqr block
	NBSytrf   int // Bunch–Kaufman panel width
	NXGeqrf   int // QR/LQ unblocked crossover on min(m, n)
	NBGetrf2  int // recursive LU panel leaf
	NBSytrd   int // tridiagonal reduction panel width
	NBGebrd   int // bidiagonal reduction panel width
	NBGehrd   int // Hessenberg reduction panel width

	// Lookahead enables the depth-1 panel pipeline in the blocked LU
	// (bit-identical to the serial schedule either way).
	Lookahead bool

	// Mixed routes GESV/POSV through the mixed-precision
	// factor-low/refine-high path by default; MixedIterMax bounds its
	// refinement sweeps.
	Mixed        bool
	MixedIterMax int

	// CheckInputs screens matrix arguments for non-finite values at the la
	// boundary before any computation.
	CheckInputs bool

	// QRIterationSVD routes LA_GESVD/LA_GELSS through the classic
	// QR-iteration path instead of divide & conquer.
	QRIterationSVD bool

	// Ctx, when non-nil, enables cooperative cancellation: kernels poll it
	// at macro-tile, panel and refinement-iteration boundaries and unwind
	// with a *CancelError once it is done. A nil Ctx makes Checkpoint free.
	Ctx context.Context
}

// Clamp bounds shared by the environment loader, the Set* compatibility
// shims and With-derived configs, so no route can smuggle in a value that
// would allocate absurd workspaces or zero-width loops.
const (
	// MaxThreads bounds the worker budget; far above useful
	// oversubscription, it only keeps a mistyped LA90_NUM_THREADS from
	// provisioning absurd goroutine counts.
	MaxThreads = 1024
	// MaxBlockDim bounds the packed-engine cache block sizes: a mistyped
	// LA90_GEMM_* degrades to a slow-but-safe blocking instead of a packed
	// panel measured in gigabytes.
	MaxBlockDim = 1 << 16
	// MaxGemmSmallDim bounds the pack-free crossover: above it the strided
	// reads blow past L1 and the packed engine is strictly better.
	MaxGemmSmallDim = 256
	// MaxNB bounds the Ilaenv factorization block sizes.
	MaxNB = 1 << 12
	// MaxMixedIterMax bounds the mixed-precision refinement sweeps; each
	// sweep costs O(n²·nrhs) before the guaranteed fallback.
	MaxMixedIterMax = 1 << 12
	// MaxParallelMinVol bounds the serial-cutoff volumes.
	MaxParallelMinVol = 1 << 30
)

// baseConfig returns the hard-coded defaults, before environment overrides:
// the block sizes and crossovers measured in PRs 1–9 and a thread budget of
// GOMAXPROCS.
func baseConfig() Config {
	return Config{
		Threads:            runtime.GOMAXPROCS(0),
		GemmMC:             256,
		GemmKC:             256,
		GemmNC:             2048,
		GemmSmallDim:       64,
		GemmParallelMinVol: 192 * 192 * 192,
		GemvParallelMinVol: 512 * 512,
		NBGetrf:            64,
		NBGetrfLg:          256,
		NBPotrf:            64,
		NBGeqrf:            32,
		NBSytrf:            48,
		NXGeqrf:            64,
		NBGetrf2:           8,
		NBSytrd:            32,
		NBGebrd:            32,
		NBGehrd:            32,
		Lookahead:          true,
		MixedIterMax:       30,
	}
}

// FromEnv applies every LA90_* tuning knob to c and returns the result.
// This is the one place the environment is parsed: the per-layer init
// parsing that used to live in blas/tuning.go, blas/parallel.go,
// lapack/lapack.go, lapack/getrf.go, lapack/mixed.go, la/check.go,
// la/mixed.go and la/svd_dc.go all funnels through here. Parsing follows
// the EnvInt hardening policy: garbage is ignored, out-of-range values are
// clamped.
func FromEnv(c Config) Config {
	c.Threads = EnvInt("LA90_NUM_THREADS", c.Threads, 1, MaxThreads)
	c.GemmMC = EnvInt("LA90_GEMM_MC", c.GemmMC, 4, MaxBlockDim)
	c.GemmKC = EnvInt("LA90_GEMM_KC", c.GemmKC, 4, MaxBlockDim)
	c.GemmNC = EnvInt("LA90_GEMM_NC", c.GemmNC, 4, MaxBlockDim)
	c.GemmSmallDim = EnvInt("LA90_GEMM_SMALL", c.GemmSmallDim, 0, MaxGemmSmallDim)
	c.GemvParallelMinVol = EnvInt("LA90_GEMV_MINVOL", c.GemvParallelMinVol, 1, MaxParallelMinVol)
	c.NBGetrf = EnvInt("LA90_NB_GETRF", c.NBGetrf, 1, MaxNB)
	c.NBGetrfLg = EnvInt("LA90_NB_GETRF", c.NBGetrfLg, 1, MaxNB) // one knob pins both size regimes
	c.NBPotrf = EnvInt("LA90_NB_POTRF", c.NBPotrf, 1, MaxNB)
	c.NBGeqrf = EnvInt("LA90_NB_GEQRF", c.NBGeqrf, 1, MaxNB)
	c.NBSytrf = EnvInt("LA90_NB_SYTRF", c.NBSytrf, 1, MaxNB)
	c.NXGeqrf = EnvInt("LA90_NX_GEQRF", c.NXGeqrf, 1, MaxNB)
	c.NBGetrf2 = EnvInt("LA90_NB_GETRF2", c.NBGetrf2, 1, MaxNB)
	c.NBSytrd = EnvInt("LA90_NB_TRD", c.NBSytrd, 1, MaxNB)
	c.NBGebrd = EnvInt("LA90_NB_BRD", c.NBGebrd, 1, MaxNB)
	c.NBGehrd = EnvInt("LA90_NB_HRD", c.NBGehrd, 1, MaxNB)
	if os.Getenv("LA90_NO_LOOKAHEAD") != "" {
		c.Lookahead = false
	}
	if EnvInt("LA90_MIXED", 0, 0, 1) == 1 {
		c.Mixed = true
	}
	c.MixedIterMax = EnvInt("LA90_MIXED_ITERMAX", c.MixedIterMax, 1, MaxMixedIterMax)
	if s := os.Getenv("LA90_CHECK_INPUTS"); s != "" && s != "0" {
		c.CheckInputs = true
	}
	if EnvInt("LA90_NO_DC", 0, 0, 1) == 1 {
		c.QRIterationSVD = true
	}
	return c.clamped()
}

// clamped returns c with every knob forced into its legal range, so a
// hand-built Config cannot produce zero-width panels, absurd workspaces or a
// non-positive worker budget no matter how it was constructed.
func (c Config) clamped() Config {
	c.Threads = ClampInt(c.Threads, 1, MaxThreads)
	c.GemmMC = ClampInt(c.GemmMC, 4, MaxBlockDim)
	c.GemmKC = ClampInt(c.GemmKC, 4, MaxBlockDim)
	c.GemmNC = ClampInt(c.GemmNC, 4, MaxBlockDim)
	c.GemmSmallDim = ClampInt(c.GemmSmallDim, 0, MaxGemmSmallDim)
	c.GemmParallelMinVol = ClampInt(c.GemmParallelMinVol, 1, MaxParallelMinVol)
	c.GemvParallelMinVol = ClampInt(c.GemvParallelMinVol, 1, MaxParallelMinVol)
	for _, p := range []*int{
		&c.NBGetrf, &c.NBGetrfLg, &c.NBPotrf, &c.NBGeqrf, &c.NBSytrf,
		&c.NXGeqrf, &c.NBGetrf2, &c.NBSytrd, &c.NBGebrd, &c.NBGehrd,
	} {
		*p = ClampInt(*p, 1, MaxNB)
	}
	c.MixedIterMax = ClampInt(c.MixedIterMax, 1, MaxMixedIterMax)
	return c
}

// defaultConfig is the process-wide default-config store. Readers load the
// pointer atomically and never write through it; writers (the Set*
// compatibility shims) serialize on defaultMu and swap in a fresh copy, so
// SetBlockSizes/SetGemmSmall/SetThreads are race-free against running
// kernels: an in-flight call keeps the snapshot it captured at its API
// boundary, and the next call sees the update.
var (
	defaultConfig atomic.Pointer[Config]
	defaultMu     sync.Mutex
)

func init() {
	c := FromEnv(baseConfig())
	defaultConfig.Store(&c)
}

// Default returns the current process-wide default configuration. The
// returned Config must be treated as immutable; derive variants with With.
func Default() *Config {
	return defaultConfig.Load()
}

// UpdateDefault atomically replaces the process-wide default with
// mutate(current) (re-clamped), returning the configuration that was in
// effect before. It is the single write path to the default store and is
// safe to call concurrently with running kernels and with other updates.
func UpdateDefault(mutate func(*Config)) *Config {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	old := defaultConfig.Load()
	next := *old
	mutate(&next)
	next = next.clamped()
	defaultConfig.Store(&next)
	return old
}

// ResetDefault replaces the process-wide default outright (re-clamped),
// returning the previous value. Tests use it to restore a saved snapshot.
func ResetDefault(c Config) *Config {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	old := defaultConfig.Load()
	next := c.clamped()
	defaultConfig.Store(&next)
	return old
}

// With returns a copy of c with mutate applied and every knob re-clamped —
// the derivation step the la boundary uses to fold per-call options into the
// captured default. c itself is never modified.
func (c *Config) With(mutate func(*Config)) *Config {
	next := *c
	mutate(&next)
	next = next.clamped()
	return &next
}

// Cfg normalizes an execution context: nil means "the process default".
// Entry points that accept a caller-provided *Config call this once so a
// zero-value caller still gets a fully populated configuration.
func Cfg(c *Config) *Config {
	if c == nil {
		return Default()
	}
	return c
}

// CancelError is the panic value raised by Checkpoint when a call's context
// is done. It unwinds through the panic-containment machinery — worker
// goroutines capture it like any fault, drain, and re-raise on the caller —
// until the la API boundary converts it into the driver's typed error
// return. Err is the context's verdict (context.Canceled or
// context.DeadlineExceeded), exposed through Unwrap so errors.Is works all
// the way down.
type CancelError struct {
	Err error
}

func (e *CancelError) Error() string {
	return "la90: computation canceled: " + e.Err.Error()
}

// Unwrap exposes the context's error (context.Canceled or
// context.DeadlineExceeded).
func (e *CancelError) Unwrap() error { return e.Err }

// Checkpoint polls the call's cancellation context, panicking with a
// *CancelError when it is done. Kernels place it at coarse work boundaries —
// a GEMM macro-tile, a factorization panel, a refinement sweep — where the
// poll cost vanishes against the work between polls. With no context
// attached it is two predictable branches.
func (c *Config) Checkpoint() {
	if c == nil || c.Ctx == nil {
		return
	}
	if err := c.Ctx.Err(); err != nil {
		panic(&CancelError{Err: err})
	}
}
