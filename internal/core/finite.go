package core

// AllFinite reports whether every element of x is finite (no NaN, no ±Inf in
// either component for complex types). It is the kernel behind the library's
// opt-in input screening (la.WithCheck / LA90_CHECK_INPUTS).
//
// The scan multiplies each element by zero and accumulates: finite·0 == 0
// exactly, while Inf·0 and NaN·0 are NaN (and for complex types a non-finite
// component makes the product non-zero-or-NaN in that component), so the
// running sums stay 0 iff every element is finite. This compiles to straight
// multiply-add over all four scalar types with no per-element branches, and
// the four independent accumulators keep the loop limited by throughput
// rather than add latency.
func AllFinite[T Scalar](x []T) bool {
	var acc0, acc1, acc2, acc3 T
	var zero T
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		acc0 += x[i] * zero
		acc1 += x[i+1] * zero
		acc2 += x[i+2] * zero
		acc3 += x[i+3] * zero
	}
	for ; i < n; i++ {
		acc0 += x[i] * zero
	}
	acc0 += acc1 + acc2 + acc3
	return acc0 == zero
}

// IsFinite reports whether the single element x is finite.
func IsFinite[T Scalar](x T) bool {
	var zero T
	return x*zero == zero
}

// NaN returns a quiet NaN of element type T (NaN in both components for
// complex types). Used by the fault-injection test harness to poison buffers.
func NaN[T Scalar]() T {
	nan := EpsDouble
	nan = (nan - nan) / (nan - nan) // 0/0 without a constant-division compile error
	var z T
	switch any(z).(type) {
	case float32:
		return any(float32(nan)).(T)
	case float64:
		return any(nan).(T)
	case complex64:
		return any(complex(float32(nan), float32(nan))).(T)
	case complex128:
		return any(complex(nan, nan)).(T)
	}
	return z
}
