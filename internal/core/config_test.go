package core

import (
	"context"
	"errors"
	"testing"
)

// TestFromEnvEveryKnob enumerates every LA90_* environment knob the
// consolidated loader understands and proves each one lands on its Config
// field, clamped. If a new knob is added to FromEnv without a row here the
// completeness check at the bottom fails.
func TestFromEnvEveryKnob(t *testing.T) {
	get := func(c Config) map[string]int {
		b := func(v bool) int {
			if v {
				return 1
			}
			return 0
		}
		return map[string]int{
			"LA90_NUM_THREADS":   c.Threads,
			"LA90_GEMM_MC":       c.GemmMC,
			"LA90_GEMM_KC":       c.GemmKC,
			"LA90_GEMM_NC":       c.GemmNC,
			"LA90_GEMM_SMALL":    c.GemmSmallDim,
			"LA90_GEMV_MINVOL":   c.GemvParallelMinVol,
			"LA90_NB_GETRF":      c.NBGetrf,
			"LA90_NB_POTRF":      c.NBPotrf,
			"LA90_NB_GEQRF":      c.NBGeqrf,
			"LA90_NB_SYTRF":      c.NBSytrf,
			"LA90_NX_GEQRF":      c.NXGeqrf,
			"LA90_NB_GETRF2":     c.NBGetrf2,
			"LA90_NB_TRD":        c.NBSytrd,
			"LA90_NB_BRD":        c.NBGebrd,
			"LA90_NB_HRD":        c.NBGehrd,
			"LA90_NO_LOOKAHEAD":  b(!c.Lookahead),
			"LA90_MIXED":         b(c.Mixed),
			"LA90_MIXED_ITERMAX": c.MixedIterMax,
			"LA90_CHECK_INPUTS":  b(c.CheckInputs),
			"LA90_NO_DC":         b(c.QRIterationSVD),
		}
	}

	cases := []struct {
		env   string
		set   string
		want  int // expected field value after FromEnv(baseConfig())
		garb  int // expected field value when the env holds garbage
		huge  int // expected field value when the env holds 1<<40 (clamp)
		boolK bool
	}{
		{"LA90_NUM_THREADS", "3", 3, baseConfig().Threads, MaxThreads, false},
		{"LA90_GEMM_MC", "128", 128, 256, MaxBlockDim, false},
		{"LA90_GEMM_KC", "96", 96, 256, MaxBlockDim, false},
		{"LA90_GEMM_NC", "512", 512, 2048, MaxBlockDim, false},
		{"LA90_GEMM_SMALL", "32", 32, 64, MaxGemmSmallDim, false},
		{"LA90_GEMV_MINVOL", "1000", 1000, 512 * 512, MaxParallelMinVol, false},
		{"LA90_NB_GETRF", "96", 96, 64, MaxNB, false},
		{"LA90_NB_POTRF", "32", 32, 64, MaxNB, false},
		{"LA90_NB_GEQRF", "48", 48, 32, MaxNB, false},
		{"LA90_NB_SYTRF", "24", 24, 48, MaxNB, false},
		{"LA90_NX_GEQRF", "96", 96, 64, MaxNB, false},
		{"LA90_NB_GETRF2", "16", 16, 8, MaxNB, false},
		{"LA90_NB_TRD", "64", 64, 32, MaxNB, false},
		{"LA90_NB_BRD", "64", 64, 32, MaxNB, false},
		{"LA90_NB_HRD", "64", 64, 32, MaxNB, false},
		{"LA90_NO_LOOKAHEAD", "1", 1, 0, 0, true},
		{"LA90_MIXED", "1", 1, 0, 0, true},
		{"LA90_MIXED_ITERMAX", "7", 7, 30, MaxMixedIterMax, false},
		{"LA90_CHECK_INPUTS", "1", 1, 0, 0, true},
		{"LA90_NO_DC", "1", 1, 0, 0, true},
	}

	covered := map[string]bool{}
	for _, tc := range cases {
		covered[tc.env] = true
		t.Run(tc.env, func(t *testing.T) {
			t.Setenv(tc.env, tc.set)
			if got := get(FromEnv(baseConfig()))[tc.env]; got != tc.want {
				t.Errorf("%s=%s: got %d, want %d", tc.env, tc.set, got, tc.want)
			}
			if tc.boolK {
				return // boolean knobs have no numeric garbage/clamp story
			}
			t.Setenv(tc.env, "banana")
			if got := get(FromEnv(baseConfig()))[tc.env]; got != tc.garb {
				t.Errorf("%s=banana: got %d, want default %d", tc.env, got, tc.garb)
			}
			t.Setenv(tc.env, "1099511627776") // 1<<40: clamps to the knob's cap
			if got := get(FromEnv(baseConfig()))[tc.env]; got != tc.huge {
				t.Errorf("%s=1<<40: got %d, want clamp %d", tc.env, got, tc.huge)
			}
		})
	}

	// Completeness: every knob the loader reports must have a table row.
	// LA90_NB_GETRF also pins NBGetrfLg; it is covered by its own row.
	for env := range get(baseConfig()) {
		if !covered[env] {
			t.Errorf("env knob %s has no table row", env)
		}
	}
}

func TestUpdateDefaultIsolatedFromSnapshots(t *testing.T) {
	saved := *Default()
	defer ResetDefault(saved)

	snap := Default()
	before := snap.GemmMC
	UpdateDefault(func(c *Config) { c.GemmMC = 128 })
	if snap.GemmMC != before {
		t.Fatalf("captured snapshot mutated by UpdateDefault: %d", snap.GemmMC)
	}
	if Default().GemmMC != 128 {
		t.Fatalf("default not updated: %d", Default().GemmMC)
	}
}

func TestWithClampsAndPreservesReceiver(t *testing.T) {
	base := Default()
	derived := base.With(func(c *Config) { c.Threads = -5; c.GemmKC = 1 << 30 })
	if derived.Threads != 1 || derived.GemmKC != MaxBlockDim {
		t.Fatalf("derived not clamped: %+v", derived)
	}
	if base.Threads == 1 && base == derived {
		t.Fatal("With returned the receiver")
	}
}

func TestCheckpoint(t *testing.T) {
	var nilCfg *Config
	nilCfg.Checkpoint() // must not panic
	(&Config{}).Checkpoint()

	ctx, cancel := context.WithCancel(context.Background())
	cfg := Default().With(func(c *Config) { c.Ctx = ctx })
	cfg.Checkpoint() // live context: no panic
	cancel()
	defer func() {
		r := recover()
		ce, ok := r.(*CancelError)
		if !ok {
			t.Fatalf("expected *CancelError panic, got %v", r)
		}
		if !errors.Is(ce, context.Canceled) {
			t.Fatalf("CancelError does not unwrap to context.Canceled: %v", ce)
		}
	}()
	cfg.Checkpoint()
}
