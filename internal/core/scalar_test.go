package core

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestEpsMatchesFortranEpsilonConvention(t *testing.T) {
	// The paper's Appendix F prints "the machine eps = 0.11921E-06" — the
	// FORTRAN 90 EPSILON(1.0) value 2^-23 — for single precision.
	if Eps[float32]() != 0x1p-23 {
		t.Fatalf("single eps = %v", Eps[float32]())
	}
	if Eps[complex64]() != 0x1p-23 {
		t.Fatalf("complex64 eps = %v", Eps[complex64]())
	}
	if Eps[float64]() != 0x1p-52 || Eps[complex128]() != 0x1p-52 {
		t.Fatal("double eps")
	}
	if got := float64(Eps[float32]()); math.Abs(got-1.1920929e-07) > 1e-14 {
		t.Fatalf("eps print value %v", got)
	}
}

func TestIsComplexAndConversions(t *testing.T) {
	if IsComplex[float32]() || IsComplex[float64]() {
		t.Fatal("real types flagged complex")
	}
	if !IsComplex[complex64]() || !IsComplex[complex128]() {
		t.Fatal("complex types not flagged")
	}
	if v := FromFloat[complex128](2.5); v != complex(2.5, 0) {
		t.Fatalf("FromFloat complex: %v", v)
	}
	if v := FromComplex[float64](complex(3, 99)); v != 3 {
		t.Fatalf("FromComplex real discards imag: %v", v)
	}
	if v := ToComplex[float32](1.5); v != complex(1.5, 0) {
		t.Fatalf("ToComplex: %v", v)
	}
	if Re[complex128](complex(1, 2)) != 1 || Im[complex128](complex(1, 2)) != 2 {
		t.Fatal("Re/Im")
	}
	if Im[float64](7) != 0 {
		t.Fatal("Im of real")
	}
}

func TestConjAbsAbs1(t *testing.T) {
	z := complex(3.0, -4.0)
	if Conj[complex128](z) != complex(3, 4) {
		t.Fatal("conj")
	}
	if Conj[float64](-2) != -2 {
		t.Fatal("real conj must be identity")
	}
	if Abs[complex128](z) != 5 {
		t.Fatalf("abs %v", Abs[complex128](z))
	}
	if Abs1[complex128](z) != 7 {
		t.Fatalf("abs1 %v", Abs1[complex128](z))
	}
	if Abs1[float64](-2.5) != 2.5 {
		t.Fatal("real abs1")
	}
}

func TestDivMatchesNativeDivision(t *testing.T) {
	f := func(ar, ai, br, bi float64) bool {
		for _, v := range []float64{ar, ai, br, bi} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		b := complex(math.Mod(br, 100), math.Mod(bi, 100))
		if cmplx.Abs(b) < 1e-3 {
			return true
		}
		a := complex(math.Mod(ar, 100), math.Mod(ai, 100))
		got := Div[complex128](a, b)
		want := a / b
		return cmplx.Abs(got-want) <= 1e-12*(1+cmplx.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Real division path.
	if Div[float64](6, 3) != 2 {
		t.Fatal("real div")
	}
}

func TestSignAndHypot3(t *testing.T) {
	if Sign(3, -1) != -3 || Sign(-3, 1) != 3 || Sign(2, 0) != 2 {
		t.Fatal("FORTRAN SIGN semantics")
	}
	if got := Hypot3(2, 3, 6); math.Abs(got-7) > 1e-14 {
		t.Fatalf("hypot3 %v", got)
	}
	if Hypot3(0, 0, 0) != 0 {
		t.Fatal("hypot3 zero")
	}
	// No overflow for huge components.
	if got := Hypot3(3e300, 4e300, 0); math.Abs(got-5e300) > 1e286 {
		t.Fatalf("hypot3 overflow handling: %v", got)
	}
}

func TestSafeMinOverflow(t *testing.T) {
	if SafeMin[float64]() != 0x1p-1022 {
		t.Fatalf("double safmin %v", SafeMin[float64]())
	}
	if SafeMin[float32]() != 0x1p-126 {
		t.Fatalf("single safmin %v", SafeMin[float32]())
	}
	if Overflow[float64]() != math.MaxFloat64 || Overflow[complex64]() != math.MaxFloat32 {
		t.Fatal("overflow thresholds")
	}
	// safmin must be the smallest normalized value: 1/safmin finite.
	if math.IsInf(1/SafeMin[float64](), 0) || math.IsInf(1/SafeMin[float32](), 0) {
		t.Fatal("1/safmin overflows")
	}
}
