// Package testutil provides the shared numerical quality metrics used by
// the test suite and by cmd/la90test, the port of the paper's "easy-to-use
// test programs" (paper §6, Appendix F). The metrics are the classical
// LAPACK test ratios: a result passes when the ratio is below a threshold
// (the paper uses 10.0), since a backward-stable solver keeps these ratios
// O(1).
package testutil

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
)

// RandGeneral fills an m×n column-major matrix with uniform (-1,1) entries.
func RandGeneral[T core.Scalar](rng *lapack.Rng, m, n, lda int) []T {
	a := make([]T, lda*n)
	for j := 0; j < n; j++ {
		lapack.Larnv(2, rng, m, a[j*lda:])
	}
	return a
}

// RandSPD returns an n×n symmetric (Hermitian) positive definite matrix,
// built as B·Bᴴ + n·I from a random B.
func RandSPD[T core.Scalar](rng *lapack.Rng, n, lda int) []T {
	b := RandGeneral[T](rng, n, n, n)
	a := make([]T, lda*n)
	blas.Herk(nil, blas.Upper, blas.NoTrans, n, n, 1, b, n, 0, a, lda)
	for j := 0; j < n; j++ {
		a[j+j*lda] += core.FromFloat[T](float64(n))
		for i := 0; i < j; i++ {
			a[j+i*lda] = core.Conj(a[i+j*lda])
		}
	}
	return a
}

// SolveResidual returns the LAPACK solve test ratio
// ‖B − A·X‖₁ / (‖A‖₁ · ‖X‖₁ · n · ε) for an n×n system with nrhs
// right-hand sides. a, x and b are column-major.
func SolveResidual[T core.Scalar](n, nrhs int, a []T, lda int, x []T, ldx int, b []T, ldb int) float64 {
	if n == 0 || nrhs == 0 {
		return 0
	}
	r := make([]T, n*nrhs)
	lapack.Lacpy('A', n, nrhs, b, ldb, r, n)
	one := core.FromFloat[T](1)
	blas.Gemm(nil, blas.NoTrans, blas.NoTrans, n, nrhs, n, -one, a, lda, x, ldx, one, r, n)
	anorm := lapack.Lange(lapack.OneNorm, n, n, a, lda)
	xnorm := lapack.Lange(lapack.OneNorm, n, nrhs, x, ldx)
	rnorm := lapack.Lange(lapack.OneNorm, n, nrhs, r, n)
	eps := core.Eps[T]()
	if anorm == 0 || xnorm == 0 {
		if rnorm == 0 {
			return 0
		}
		return 1 / eps
	}
	return rnorm / anorm / xnorm / (float64(n) * eps)
}

// LUResidual returns ‖P·L·U − A‖₁ / (‖A‖₁ · n · ε) for the factorization
// produced by Getrf: af holds the packed L\U factors and ipiv the 0-based
// pivots; a is the original matrix.
func LUResidual[T core.Scalar](m, n int, a []T, lda int, af []T, ldaf int, ipiv []int) float64 {
	mn := min(m, n)
	// Build L (m×mn, unit lower) and U (mn×n, upper).
	l := make([]T, m*mn)
	u := make([]T, mn*n)
	for j := 0; j < mn; j++ {
		l[j+j*m] = core.FromFloat[T](1)
		for i := j + 1; i < m; i++ {
			l[i+j*m] = af[i+j*ldaf]
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= min(j, mn-1); i++ {
			u[i+j*mn] = af[i+j*ldaf]
		}
	}
	// R = L·U, then apply P (undo the row interchanges).
	r := make([]T, m*n)
	blas.Gemm(nil, blas.NoTrans, blas.NoTrans, m, n, mn, core.FromFloat[T](1), l, m, u, mn, core.FromFloat[T](0), r, m)
	lapack.LaswpInv(n, r, m, 0, mn, ipiv)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			r[i+j*m] -= a[i+j*lda]
		}
	}
	anorm := lapack.Lange(lapack.OneNorm, m, n, a, lda)
	rnorm := lapack.Lange(lapack.OneNorm, m, n, r, m)
	eps := core.Eps[T]()
	if anorm == 0 {
		if rnorm == 0 {
			return 0
		}
		return 1 / eps
	}
	return rnorm / anorm / (float64(n) * eps)
}

// CholeskyResidual returns ‖A − Uᴴ·U‖₁ / (‖A‖₁ · n · ε) (or the L·Lᴴ form)
// for the factor produced by Potrf.
func CholeskyResidual[T core.Scalar](uplo blas.Uplo, n int, a []T, lda int, af []T, ldaf int) float64 {
	r := make([]T, n*n)
	if uplo == blas.Upper {
		// R = Uᴴ·U using only the upper triangle of af.
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var s T
				for k := 0; k <= min(i, j); k++ {
					s += core.Conj(af[k+i*ldaf]) * af[k+j*ldaf]
				}
				r[i+j*n] = s
			}
		}
	} else {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var s T
				for k := 0; k <= min(i, j); k++ {
					s += af[i+k*ldaf] * core.Conj(af[j+k*ldaf])
				}
				r[i+j*n] = s
			}
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var aij T
			if (uplo == blas.Upper) == (i <= j) {
				aij = a[i+j*lda]
			} else {
				aij = core.Conj(a[j+i*lda])
			}
			r[i+j*n] -= aij
		}
	}
	anorm := lapack.Lansy(lapack.OneNorm, uplo, n, a, lda)
	rnorm := lapack.Lange(lapack.OneNorm, n, n, r, n)
	eps := core.Eps[T]()
	if anorm == 0 {
		if rnorm == 0 {
			return 0
		}
		return 1 / eps
	}
	return rnorm / anorm / (float64(n) * eps)
}

// OrthoResidual returns ‖Qᴴ·Q − I‖₁ / (n · ε) for an m×n matrix Q with
// orthonormal columns.
func OrthoResidual[T core.Scalar](m, n int, q []T, ldq int) float64 {
	r := make([]T, n*n)
	blas.Gemm(nil, blas.ConjTrans, blas.NoTrans, n, n, m, core.FromFloat[T](1), q, ldq, q, ldq, core.FromFloat[T](0), r, n)
	for i := 0; i < n; i++ {
		r[i+i*n] -= core.FromFloat[T](1)
	}
	return lapack.Lange(lapack.OneNorm, n, n, r, n) / (float64(max(1, n)) * core.Eps[T]())
}

// EigResidual returns ‖A·Z − Z·diag(w)‖₁ / (‖A‖₁ · n · ε) for a symmetric
// eigendecomposition.
func EigResidual[T core.Scalar](n int, a []T, lda int, w []float64, z []T, ldz int) float64 {
	if n == 0 {
		return 0
	}
	r := make([]T, n*n)
	one := core.FromFloat[T](1)
	blas.Gemm(nil, blas.NoTrans, blas.NoTrans, n, n, n, one, a, lda, z, ldz, core.FromFloat[T](0), r, n)
	for j := 0; j < n; j++ {
		wj := core.FromFloat[T](w[j])
		for i := 0; i < n; i++ {
			r[i+j*n] -= wj * z[i+j*ldz]
		}
	}
	anorm := lapack.Lange(lapack.OneNorm, n, n, a, lda)
	rnorm := lapack.Lange(lapack.OneNorm, n, n, r, n)
	eps := core.Eps[T]()
	if anorm == 0 {
		anorm = 1
	}
	return rnorm / anorm / (float64(n) * eps)
}

// MaxDiff returns the largest absolute elementwise difference between two
// equally shaped slices.
func MaxDiff[T core.Scalar](a, b []T) float64 {
	d := 0.0
	for i := range a {
		d = math.Max(d, core.Abs(a[i]-b[i]))
	}
	return d
}
