# Pre-merge gate for the repository (referenced from README "Install / build").
# `make ci` is what a PR must keep green: static checks, a full build, the
# whole test suite, the race detector over the threaded BLAS engine and the
# lookahead-pipelined factorizations, and a one-iteration bench smoke run so
# the benchmark harness itself cannot rot.

GO ?= go

.PHONY: ci vet build test race bench benchsmoke fuzzsmoke fuzz

ci: vet build test race fuzzsmoke benchsmoke

vet:
	$(GO) vet ./...
	$(GO) vet ./internal/lapack/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run covers the threaded engine, the factorizations driving it,
# and the la boundary — including the chaos tests that panic workers on
# purpose, so panic containment is itself exercised under the detector.
race:
	$(GO) test -race ./internal/blas/ ./internal/lapack/ ./la/

# Bounded fuzz gate: a short randomized burst per target on every CI run.
# Failures minimize into la/testdata/fuzz/ and then replay forever under
# plain `go test`, so anything fuzzsmoke shakes out stays fixed.
FUZZTIME ?= 5s
fuzzsmoke:
	$(GO) test ./la/ -fuzz='^FuzzGESV$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./la/ -fuzz='^FuzzGESVX$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./la/ -fuzz='^FuzzGELS$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./la/ -fuzz='^FuzzGELSD$$' -fuzztime=$(FUZZTIME)

# Open-ended fuzzing session for one target: make fuzz TARGET=FuzzGESV
TARGET ?= FuzzGESV
fuzz:
	$(GO) test ./la/ -fuzz='^$(TARGET)$$' -fuzztime=10m

# Compile-and-run check for the benchmarks: one iteration each of the GEMM
# engine and factorization benchmarks, no timing claims.
benchsmoke:
	$(GO) test -run=NONE -bench='Getrf|Gemm' -benchtime=1x .
	$(GO) run ./cmd/la90bench -reduce -maxn 256 -reps 1 -out /tmp/BENCH_reduce_smoke.json
	$(GO) run ./cmd/la90bench -batch -maxbatch 64 -reps 1 -out /tmp/BENCH_batch_smoke.json
	$(GO) run ./cmd/la90bench -mixed -maxn 256 -maxbatch 16 -reps 1 -out /tmp/BENCH_mixed_smoke.json
	$(GO) run ./cmd/la90bench -cond -maxn 256 -reps 1 -out /tmp/BENCH_cond_smoke.json
	$(GO) run ./cmd/la90bench -svd -maxn 256 -reps 1 -out /tmp/BENCH_svd_smoke.json

# Quick performance snapshot (see README "Performance" for the full story).
bench:
	$(GO) test -bench 'Gemm|Getrf|Potrf|Geqrf' -benchtime 5x -run '^$$' .
