# Pre-merge gate for the repository (referenced from README "Install / build").
# `make ci` is what a PR must keep green: static checks, a full build, the
# whole test suite, the race detector over the threaded BLAS engine and the
# lookahead-pipelined factorizations, and a one-iteration bench smoke run so
# the benchmark harness itself cannot rot.

GO ?= go

.PHONY: ci vet build test race bench benchsmoke

ci: vet build test race benchsmoke

vet:
	$(GO) vet ./...
	$(GO) vet ./internal/lapack/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/blas/ ./internal/lapack/

# Compile-and-run check for the benchmarks: one iteration each of the GEMM
# engine and factorization benchmarks, no timing claims.
benchsmoke:
	$(GO) test -run=NONE -bench='Getrf|Gemm' -benchtime=1x .

# Quick performance snapshot (see README "Performance" for the full story).
bench:
	$(GO) test -bench 'Gemm|Getrf|Potrf|Geqrf' -benchtime 5x -run '^$$' .
