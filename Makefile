# Pre-merge gate for the repository (referenced from README "Install / build").
# `make ci` is what a PR must keep green: static checks, a full build, the
# whole test suite, the race detector over the threaded BLAS engine and the
# lookahead-pipelined factorizations, and a one-iteration bench smoke run so
# the benchmark harness itself cannot rot.

GO ?= go

.PHONY: ci vet lint-globals build test race bench benchsmoke fuzzsmoke fuzz

ci: vet lint-globals build test race fuzzsmoke benchsmoke

vet:
	$(GO) vet ./...
	$(GO) vet ./internal/lapack/...

# Execution-context hygiene: since the per-call Config refactor, kernels and
# drivers must read every tunable from the *core.Config threaded down from
# the API boundary — never from the process-wide default store mid-call.
# Direct default reads in internal/lapack are therefore confined to
# defaults.go (the documented Set*/getter shims); anywhere else they would
# let a concurrent SetThreads/SetBlockSizes change a call's behavior
# mid-flight.
lint-globals:
	@bad=$$(grep -rn 'blas\.Threads()\|blas\.GemmSmallDim()\|core\.Default()' \
		internal/lapack --include='*.go' \
		| grep -v '_test\.go' | grep -v '^internal/lapack/defaults\.go:'); \
	if [ -n "$$bad" ]; then \
		echo 'lint-globals: default-store reads outside internal/lapack/defaults.go:'; \
		echo "$$bad"; exit 1; \
	fi
	@echo "lint-globals: ok"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run covers the threaded engine, the factorizations driving it,
# the la boundary — including the chaos tests that panic workers on purpose,
# so panic containment is itself exercised under the detector — and the
# atomic default-config store (core) plus the per-call execution-context
# tests (la/config_test.go) that churn it while drivers run.
race:
	$(GO) test -race ./internal/core/ ./internal/blas/ ./internal/lapack/ ./la/

# Bounded fuzz gate: a short randomized burst per target on every CI run.
# Failures minimize into la/testdata/fuzz/ and then replay forever under
# plain `go test`, so anything fuzzsmoke shakes out stays fixed.
FUZZTIME ?= 5s
fuzzsmoke:
	$(GO) test ./la/ -fuzz='^FuzzGESV$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./la/ -fuzz='^FuzzGESVX$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./la/ -fuzz='^FuzzGELS$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./la/ -fuzz='^FuzzGELSD$$' -fuzztime=$(FUZZTIME)

# Open-ended fuzzing session for one target: make fuzz TARGET=FuzzGESV
TARGET ?= FuzzGESV
fuzz:
	$(GO) test ./la/ -fuzz='^$(TARGET)$$' -fuzztime=10m

# Compile-and-run check for the benchmarks: one iteration each of the GEMM
# engine and factorization benchmarks, no timing claims.
benchsmoke:
	$(GO) test -run=NONE -bench='Getrf|Gemm' -benchtime=1x .
	$(GO) run ./cmd/la90bench -reduce -maxn 256 -reps 1 -out /tmp/BENCH_reduce_smoke.json
	$(GO) run ./cmd/la90bench -batch -maxbatch 64 -reps 1 -out /tmp/BENCH_batch_smoke.json
	$(GO) run ./cmd/la90bench -mixed -maxn 256 -maxbatch 16 -reps 1 -out /tmp/BENCH_mixed_smoke.json
	$(GO) run ./cmd/la90bench -cond -maxn 256 -reps 1 -out /tmp/BENCH_cond_smoke.json
	$(GO) run ./cmd/la90bench -svd -maxn 256 -reps 1 -out /tmp/BENCH_svd_smoke.json

# Quick performance snapshot (see README "Performance" for the full story).
bench:
	$(GO) test -bench 'Gemm|Getrf|Potrf|Geqrf' -benchtime 5x -run '^$$' .
