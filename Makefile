# Pre-merge gate for the repository (referenced from README "Install / build").
# `make ci` is what a PR must keep green: static checks, a full build, the
# whole test suite, and the race detector over the threaded BLAS engine.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/blas/

# Quick performance snapshot (see README "Performance" for the full story).
bench:
	$(GO) test -bench 'Gemm|GetrfLarge' -benchtime 5x -run '^$$' .
