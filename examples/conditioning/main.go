// Conditioning demonstrates the expert drivers' error analysis — the
// LAPACK90 arguments RCOND, FERR, BERR, RCONDE and RCONDV that the simple
// drivers omit. It solves the notoriously ill-conditioned Hilbert system
// with LA_GESVX, watches the condition estimate track the known growth,
// and then inspects eigenvalue sensitivity with LA_GEEVX on a normal
// versus a defective-ish matrix.
//
//	go run ./examples/conditioning
package main

import (
	"fmt"
	"math"

	"repro/la"
)

func hilbert(n int) *la.Matrix[float64] {
	h := la.NewMatrix[float64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	return h
}

func main() {
	fmt.Println("Hilbert systems through LA_GESVX (x_true = ones):")
	fmt.Println("  n     RCOND        FERR         true error")
	for _, n := range []int{4, 6, 8, 10, 12} {
		h := hilbert(n)
		b := la.NewMatrix[float64](n, 1)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += h.At(i, j)
			}
			b.Set(i, 0, s)
		}
		res, err := la.GESVX(h, b)
		if err != nil {
			if e, ok := err.(*la.Error); !ok || e.Info != n+1 {
				panic(err)
			}
			// INFO = n+1: singular to working precision — the solution and
			// bounds are still returned; exactly what we want to see here.
		}
		trueErr := 0.0
		for i := 0; i < n; i++ {
			trueErr = math.Max(trueErr, math.Abs(res.X.At(i, 0)-1))
		}
		fmt.Printf(" %2d  %10.3e  %10.3e  %10.3e\n", n, res.RCond, res.Ferr[0], trueErr)
	}
	fmt.Println("RCOND collapses like the known κ(H_n) ≈ e^{3.5n} growth, and")
	fmt.Println("FERR stays an upper bound on the true error throughout.")
	fmt.Println()

	// Eigenvalue conditioning: a symmetric matrix has RCONDE = 1 for every
	// eigenvalue; pushing two eigenvalues together through a large
	// off-diagonal coupling destroys that.
	fmt.Println("Eigenvalue condition numbers through LA_GEEVX:")
	sym := la.MatrixFrom([][]float64{
		{4, 1, 0},
		{1, 2, 1},
		{0, 1, 0},
	})
	resS, err := la.GEEVX(sym, la.WithLeft(), la.WithRight())
	if err != nil {
		panic(err)
	}
	fmt.Printf("  symmetric:   RCONDE = %.6f %.6f %.6f (all 1: perfectly conditioned)\n",
		resS.RCondE[0], resS.RCondE[1], resS.RCondE[2])

	bad := la.MatrixFrom([][]float64{
		{1.0, 0, 0},
		{1e7, 1.0001, 0},
		{0, 0, 5},
	})
	resB, err := la.GEEVX(bad, la.WithLeft(), la.WithRight())
	if err != nil {
		panic(err)
	}
	fmt.Printf("  near-defective pair: RCONDE = %.2e %.2e (tiny), isolated eigenvalue RCONDE = %.3f\n",
		resB.RCondE[0], resB.RCondE[1], resB.RCondE[2])
	fmt.Printf("  RCONDV (eigenvector sep estimates): %.2e %.2e %.2e\n",
		resB.RCondV[0], resB.RCondV[1], resB.RCondV[2])
}
