// Eigen computes the vibration modes of a chain of masses and springs —
// the classic symmetric tridiagonal eigenproblem — with LA_STEV, checks
// the answer against the analytic spectrum, then solves the dense
// generalized problem K·x = λ·M·x with LA_SYGV, and finishes with a
// low-rank approximation via LA_GESVD.
//
//	go run ./examples/eigen
package main

import (
	"fmt"
	"math"

	"repro/la"
)

func main() {
	// --- Modes of a uniform chain: K = tridiag(-1, 2, -1). ---
	const n = 8
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	z := la.Must1(la.STEV[float64](d, e, la.WithVectors()))
	fmt.Println("chain eigenvalues (computed vs analytic 2−2cos(kπ/(n+1))):")
	for k := 0; k < n; k++ {
		analytic := 2 - 2*math.Cos(float64(k+1)*math.Pi/float64(n+1))
		fmt.Printf("  λ%-2d = %12.8f   analytic %12.8f\n", k+1, d[k], analytic)
	}
	_ = z

	// --- Generalized problem: nonuniform masses, K·x = λ·M·x. ---
	k := la.NewMatrix[float64](n, n)
	m := la.NewMatrix[float64](n, n)
	for i := 0; i < n; i++ {
		k.Set(i, i, 2)
		if i < n-1 {
			k.Set(i, i+1, -1)
			k.Set(i+1, i, -1)
		}
		m.Set(i, i, 1+0.5*float64(i%3)) // masses 1, 1.5, 2, 1, …
	}
	w := la.Must1(la.SYGV(k, m, la.WithVectors()))
	fmt.Println("generalized frequencies sqrt(λ) of the weighted chain:")
	for i := 0; i < n; i++ {
		fmt.Printf("  ω%-2d = %.6f\n", i+1, math.Sqrt(w[i]))
	}

	// --- SVD: best rank-2 approximation of a smooth surface sample. ---
	const rows, cols = 12, 9
	a := la.NewMatrix[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			x := float64(i) / (rows - 1)
			y := float64(j) / (cols - 1)
			a.Set(i, j, math.Sin(math.Pi*x)*math.Cos(math.Pi*y)+0.3*x*y)
		}
	}
	res := la.Must1(la.GESVD(a.Clone()))
	fmt.Printf("singular values: ")
	for _, s := range res.S {
		fmt.Printf("%.4f ", s)
	}
	fmt.Println()
	// Reconstruct with the top two triples and report the error, which
	// must equal σ₃ in the spectral norm.
	err2 := 0.0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := 0.0
			for t := 0; t < 2; t++ {
				v += res.U.At(i, t) * res.S[t] * res.VT.At(t, j)
			}
			err2 = math.Max(err2, math.Abs(v-a.At(i, j)))
		}
	}
	fmt.Printf("rank-2 approximation max error %.6f (σ₃ = %.6f bounds the 2-norm error)\n",
		err2, res.S[2])
}
