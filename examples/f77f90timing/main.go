// F77f90timing is the Go rendering of the paper's Example 3 (Figure 3):
// both interface layers are used side by side on an N = 500 system and
// timed, demonstrating that the simplified interface costs nothing — both
// drive the identical computational core.
//
//	go run ./examples/f77f90timing
package main

import (
	"fmt"
	"time"

	"repro/f77"
	"repro/internal/lapack"
	"repro/la"
)

func main() {
	// N = 500; NRHS = 2
	n, nrhs := 500, 2
	lda, ldb := n, n
	a := make([]float64, lda*n)
	b := make([]float64, ldb*nrhs)
	rng := lapack.NewRng([4]int{1998, 3, 28, 4})
	lapack.Larnv(1, rng, lda*n, a)
	for j := 0; j < nrhs; j++ {
		for i := 0; i < n; i++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i+k*lda]
			}
			b[i+j*ldb] = sum * float64(j+1)
		}
	}

	// USE f77_LAPACK, ONLY: F77GESV => LA_GESV
	a77 := append([]float64(nil), a...)
	b77 := append([]float64(nil), b...)
	ipiv := make([]int, n)
	t1 := time.Now()
	info := f77.GESV(n, nrhs, a77, lda, ipiv, b77, ldb)
	fmt.Printf("INFO and CPUTIME of F77GESV  %d  %.6f\n", info, time.Since(t1).Seconds())

	// USE f90_LAPACK, ONLY: F90GESV => LA_GESV
	a90 := la.NewMatrix[float64](n, n)
	copy(a90.Data, a)
	b90 := la.NewMatrix[float64](n, nrhs)
	copy(b90.Data, b)
	t2 := time.Now()
	la.Must1(la.GESV(a90, b90))
	fmt.Printf("CPUTIME of F90GESV  %.6f\n", time.Since(t2).Seconds())
}
