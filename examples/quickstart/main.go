// Quickstart is the Go rendering of the paper's Example 2 (Figure 2): the
// simplified F90 interface solving a linear system in two statements —
// allocate and fill A and B, then CALL LA_GESV( A, B ).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/lapack"
	"repro/la"
)

func main() {
	const (
		n    = 5
		nrhs = 2
	)
	// ALLOCATE( A(N,N), B(N,NRHS) ); CALL RANDOM_NUMBER(A)
	a := la.NewMatrix[float64](n, n)
	rng := lapack.NewRng([4]int{1998, 3, 28, 3})
	lapack.Larnv(1, rng, n*n, a.Data)

	// DO J = 1, NRHS; B(:,J) = SUM(A, DIM=2)*J; ENDDO
	b := la.NewMatrix[float64](n, nrhs)
	for j := 0; j < nrhs; j++ {
		for i := 0; i < n; i++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a.At(i, k)
			}
			b.Set(i, j, sum*float64(j+1))
		}
	}

	// CALL LA_GESV( A, B ) — shapes inferred, workspace internal, pivots
	// returned rather than passed.
	la.Must1(la.GESV(a, b))

	// IF( NRHS < 6 .AND. N < 11 )THEN WRITE the solution (X(:,j) = j·1).
	fmt.Println("The solution:")
	for j := 0; j < nrhs; j++ {
		for i := 0; i < n; i++ {
			fmt.Printf(" %9.3f", b.At(i, j))
		}
		fmt.Println()
	}
}
