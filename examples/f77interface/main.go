// F77interface is the Go rendering of the paper's Example 1 (Figure 1):
// solving the same system through the explicit F77 interface, with every
// dimension, leading dimension, pivot array and INFO spelled out by the
// caller.
//
//	go run ./examples/f77interface
package main

import (
	"fmt"

	"repro/f77"
	"repro/internal/lapack"
)

func main() {
	// INTEGER :: J, INFO, N, NRHS, LDA, LDB
	// INTEGER, ALLOCATABLE :: IPIV(:)
	// REAL(WP), ALLOCATABLE :: A(:,:), B(:,:)
	n, nrhs := 5, 2
	lda, ldb := n, n
	a := make([]float64, lda*n)
	b := make([]float64, ldb*nrhs)
	ipiv := make([]int, n)

	// CALL RANDOM_NUMBER(A)
	rng := lapack.NewRng([4]int{1998, 3, 28, 3})
	lapack.Larnv(1, rng, lda*n, a)

	// DO J = 1, NRHS; B(:,J) = SUM(A, DIM=2)*J; ENDDO
	for j := 0; j < nrhs; j++ {
		for i := 0; i < n; i++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i+k*lda]
			}
			b[i+j*ldb] = sum * float64(j+1)
		}
	}

	// CALL LA_GESV( N, NRHS, A, LDA, IPIV, B, LDB, INFO )
	info := f77.GESV(n, nrhs, a, lda, ipiv, b, ldb)
	fmt.Println("INFO = ", info)

	if nrhs < 6 && n < 11 {
		fmt.Println("The solution:")
		for j := 0; j < nrhs; j++ {
			for i := 0; i < n; i++ {
				fmt.Printf(" %9.3f", b[i+j*ldb])
			}
			fmt.Println()
		}
	}
}
