// Leastsquares fits a polynomial to noisy samples three ways — LA_GELS
// (QR, full rank assumed), LA_GELSS (SVD, rank-revealing) and LA_GELSX
// (complete orthogonal factorization) — and then solves a constrained fit
// with LA_GGLSE, exercising the least squares corner of the paper's
// Appendix G catalogue.
//
//	go run ./examples/leastsquares
package main

import (
	"fmt"
	"math"

	"repro/internal/lapack"
	"repro/la"
)

func main() {
	// Samples of y = 0.5 − 2·x + 0.25·x³ with mild deterministic "noise".
	const (
		m   = 40 // samples
		deg = 3  // cubic fit: 4 coefficients
	)
	xs := make([]float64, m)
	ys := make([]float64, m)
	rng := lapack.NewRng([4]int{42, 42, 42, 42})
	for i := range xs {
		xs[i] = -2 + 4*float64(i)/(m-1)
		ys[i] = 0.5 - 2*xs[i] + 0.25*math.Pow(xs[i], 3) + 0.01*rng.Uniform11()
	}

	vander := func() *la.Matrix[float64] {
		a := la.NewMatrix[float64](m, deg+1)
		for i := 0; i < m; i++ {
			p := 1.0
			for j := 0; j <= deg; j++ {
				a.Set(i, j, p)
				p *= xs[i]
			}
		}
		return a
	}

	// --- LA_GELS: QR-based fit. ---
	b := make([]float64, m)
	copy(b, ys)
	la.Must(la.GELS1(vander(), b))
	fmt.Println("LA_GELS coefficients (want ≈ 0.5, -2, 0, 0.25):")
	fmt.Printf("  %+.4f %+.4f %+.4f %+.4f\n", b[0], b[1], b[2], b[3])

	// --- LA_GELSS: the same fit via the SVD, with the singular values. ---
	b2 := la.NewMatrix[float64](m, 1)
	copy(b2.Data, ys)
	rank, s, err := la.GELSS(vander(), b2)
	la.Must(err)
	fmt.Printf("LA_GELSS rank = %d, singular values = %.3f\n", rank, s)
	fmt.Printf("  %+.4f %+.4f %+.4f %+.4f\n", b2.At(0, 0), b2.At(1, 0), b2.At(2, 0), b2.At(3, 0))

	// --- Rank deficiency: duplicate a column and watch GELSS/GELSX detect
	// it while still producing the minimum-norm solution. ---
	adef := la.NewMatrix[float64](m, deg+2)
	v := vander()
	for j := 0; j <= deg; j++ {
		for i := 0; i < m; i++ {
			adef.Set(i, j, v.At(i, j))
		}
	}
	for i := 0; i < m; i++ {
		adef.Set(i, deg+1, v.At(i, 1)) // duplicate the linear column
	}
	b3 := la.NewMatrix[float64](m, 1)
	copy(b3.Data, ys)
	rank3, _, err := la.GELSS(adef.Clone(), b3, la.WithRCond(1e-10))
	la.Must(err)
	b4 := la.NewMatrix[float64](m, 1)
	copy(b4.Data, ys)
	rank4, _, err := la.GELSX(adef.Clone(), b4, la.WithRCond(1e-10))
	la.Must(err)
	fmt.Printf("rank-deficient design: GELSS rank = %d, GELSX rank = %d (columns = %d)\n",
		rank3, rank4, deg+2)
	// The minimum-norm solution splits the linear coefficient between the
	// two identical columns.
	fmt.Printf("  split linear coefficients: %+.4f and %+.4f (sum ≈ -2)\n",
		b3.At(1, 0), b3.At(deg+1, 0))

	// --- LA_GGLSE: force the fit through the point (0, 1). ---
	c := make([]float64, m)
	copy(c, ys)
	bc := la.NewMatrix[float64](1, deg+1)
	bc.Set(0, 0, 1) // constraint row: p(0) = coefficient 0
	d := []float64{1}
	x, err := la.GGLSE(vander(), bc, c, d)
	la.Must(err)
	fmt.Printf("LA_GGLSE with p(0)=1 pinned: %+.4f %+.4f %+.4f %+.4f\n", x[0], x[1], x[2], x[3])
}
