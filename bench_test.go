// Benchmarks regenerating the paper's measurable artifacts (see DESIGN.md,
// experiment index E3/E9) plus ablations of the design choices the library
// makes internally. Run with:
//
//	go test -bench . -benchmem
package main

import (
	"repro/internal/core"

	"testing"

	"repro/f77"
	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/la"
)

// ---- E3: the paper's Example 3 — F77 vs F90 interface on GESV, N=500 ----

func exampleSystem(n, nrhs int) ([]float64, []float64) {
	rng := lapack.NewRng([4]int{1998, 3, 28, n})
	a := make([]float64, n*n)
	lapack.Larnv(1, rng, n*n, a)
	b := make([]float64, n*nrhs)
	for j := 0; j < nrhs; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a[i+k*n]
			}
			b[i+j*n] = s * float64(j+1)
		}
	}
	return a, b
}

func benchF77GESV(b *testing.B, n, nrhs int) {
	a0, b0 := exampleSystem(n, nrhs)
	aw := make([]float64, len(a0))
	bw := make([]float64, len(b0))
	ipiv := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(aw, a0)
		copy(bw, b0)
		if info := f77.GESV(n, nrhs, aw, n, ipiv, bw, n); info != 0 {
			b.Fatalf("info=%d", info)
		}
	}
}

func benchF90GESV(b *testing.B, n, nrhs int) {
	a0, b0 := exampleSystem(n, nrhs)
	aw := la.NewMatrix[float64](n, n)
	bw := la.NewMatrix[float64](n, nrhs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(aw.Data, a0)
		copy(bw.Data, b0)
		if _, err := la.GESV(aw, bw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample3_F77GESV_N500(b *testing.B) { benchF77GESV(b, 500, 2) }
func BenchmarkExample3_F90GESV_N500(b *testing.B) { benchF90GESV(b, 500, 2) }

// ---- E9: wrapper-overhead sweep across N for several drivers ----

func BenchmarkOverheadGESV(b *testing.B) {
	for _, n := range []int{10, 50, 100, 200} {
		b.Run("F77/N="+itoa(n), func(b *testing.B) { benchF77GESV(b, n, 2) })
		b.Run("F90/N="+itoa(n), func(b *testing.B) { benchF90GESV(b, n, 2) })
	}
}

func BenchmarkOverheadPOSV(b *testing.B) {
	for _, n := range []int{50, 200} {
		rng := lapack.NewRng([4]int{n, 9, 9, 9})
		a0 := make([]float64, n*n)
		g := make([]float64, n*n)
		lapack.Larnv(2, rng, n*n, g)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += g[k+i*n] * g[k+j*n]
				}
				a0[i+j*n] = s
			}
			a0[j+j*n] += float64(n)
		}
		b0 := make([]float64, n*2)
		lapack.Larnv(1, rng, n*2, b0)

		b.Run("F77/N="+itoa(n), func(b *testing.B) {
			aw := make([]float64, n*n)
			bw := make([]float64, n*2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(aw, a0)
				copy(bw, b0)
				if info := f77.POSV(f77.Upper, n, 2, aw, n, bw, n); info != 0 {
					b.Fatalf("info=%d", info)
				}
			}
		})
		b.Run("F90/N="+itoa(n), func(b *testing.B) {
			aw := la.NewMatrix[float64](n, n)
			bw := la.NewMatrix[float64](n, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(aw.Data, a0)
				copy(bw.Data, b0)
				if err := la.POSV(aw, bw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOverheadGELS(b *testing.B) {
	m, n := 300, 60
	rng := lapack.NewRng([4]int{m, n, 1, 1})
	a0 := make([]float64, m*n)
	lapack.Larnv(2, rng, m*n, a0)
	b0 := make([]float64, m)
	lapack.Larnv(2, rng, m, b0)
	b.Run("F77", func(b *testing.B) {
		aw := make([]float64, m*n)
		bw := make([]float64, m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			copy(bw, b0)
			if info := f77.GELS(f77.NoTrans, m, n, 1, aw, m, bw, m, nil, 0); info != 0 {
				b.Fatalf("info=%d", info)
			}
		}
	})
	b.Run("F90", func(b *testing.B) {
		aw := la.NewMatrix[float64](m, n)
		bw := make([]float64, m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw.Data, a0)
			copy(bw, b0)
			if err := la.GELS1(aw, bw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkOverheadSYEV(b *testing.B) {
	n := 100
	rng := lapack.NewRng([4]int{n, 2, 2, 2})
	a0 := make([]float64, n*n)
	lapack.Larnv(2, rng, n*n, a0)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a0[j+i*n] = a0[i+j*n]
		}
	}
	w := make([]float64, n)
	b.Run("F77", func(b *testing.B) {
		aw := make([]float64, n*n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			if info := f77.SYEV[float64](true, f77.Upper, n, aw, n, w); info != 0 {
				b.Fatalf("info=%d", info)
			}
		}
	})
	b.Run("F90", func(b *testing.B) {
		aw := la.NewMatrix[float64](n, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw.Data, a0)
			if _, err := la.SYEV(aw, la.WithVectors()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Ablations of internal design choices (DESIGN.md §6) ----

// Blocked (Level-3 BLAS) versus unblocked LU — the "high performance" in
// the paper's title is LAPACK's blocking; this quantifies it in this
// implementation.
func BenchmarkAblationGETRF(b *testing.B) {
	n := 400
	rng := lapack.NewRng([4]int{n, 3, 3, 3})
	a0 := make([]float64, n*n)
	lapack.Larnv(2, rng, n*n, a0)
	ipiv := make([]int, n)
	b.Run("blocked", func(b *testing.B) {
		aw := make([]float64, n*n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			lapack.Getrf(core.Default(), n, n, aw, n, ipiv)
		}
	})
	b.Run("unblocked", func(b *testing.B) {
		aw := make([]float64, n*n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			lapack.Getf2(n, n, aw, n, ipiv)
		}
	})
}

// QL/QR iteration versus divide & conquer for the full symmetric
// eigenproblem with vectors (the SYEV vs SYEVD choice the paper's driver
// list exposes).
func BenchmarkAblationSymEig(b *testing.B) {
	n := 200
	rng := lapack.NewRng([4]int{n, 4, 4, 4})
	a0 := make([]float64, n*n)
	lapack.Larnv(2, rng, n*n, a0)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a0[j+i*n] = a0[i+j*n]
		}
	}
	w := make([]float64, n)
	b.Run("SYEV-QL", func(b *testing.B) {
		aw := make([]float64, n*n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			lapack.Syev[float64](core.Default(), true, lapack.Upper, n, aw, n, w)
		}
	})
	b.Run("SYEVD-DC", func(b *testing.B) {
		aw := make([]float64, n*n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			lapack.Syevd[float64](core.Default(), true, lapack.Upper, n, aw, n, w)
		}
	})
}

// Rank-deficient least squares: complete orthogonal factorization versus
// SVD (GELSX vs GELSS).
func BenchmarkAblationRankDeficientLS(b *testing.B) {
	m, n := 200, 80
	rng := lapack.NewRng([4]int{m, n, 5, 5})
	a0 := make([]float64, m*n)
	lapack.Larnv(2, rng, m*n, a0)
	b0 := make([]float64, m)
	lapack.Larnv(2, rng, m, b0)
	b.Run("GELSX", func(b *testing.B) {
		aw := make([]float64, m*n)
		bw := make([]float64, m)
		jpvt := make([]int, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			copy(bw, b0)
			lapack.Gelsx(core.Default(), m, n, 1, aw, m, jpvt, 1e-12, bw, m)
		}
	})
	b.Run("GELSS", func(b *testing.B) {
		aw := make([]float64, m*n)
		bw := make([]float64, m)
		s := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			copy(bw, b0)
			lapack.Gelss(core.Default(), m, n, 1, aw, m, bw, m, s, -1)
		}
	})
}

// Expert-driver cost: what refinement + condition estimation add on top
// of the simple driver.
func BenchmarkAblationExpertDriver(b *testing.B) {
	n := 200
	a0, b0 := exampleSystem(n, 2)
	b.Run("GESV", func(b *testing.B) { benchF90GESV(b, n, 2) })
	b.Run("GESVX", func(b *testing.B) {
		aw := la.NewMatrix[float64](n, n)
		bw := la.NewMatrix[float64](n, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw.Data, a0)
			copy(bw.Data, b0)
			if _, err := la.GESVX(aw, bw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Blocked versus unblocked QR — the second Level-3 blocking ablation.
func BenchmarkAblationGEQRF(b *testing.B) {
	m, n := 400, 200
	rng := lapack.NewRng([4]int{m, n, 8, 8})
	a0 := make([]float64, m*n)
	lapack.Larnv(2, rng, m*n, a0)
	tau := make([]float64, n)
	b.Run("blocked", func(b *testing.B) {
		aw := make([]float64, m*n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			lapack.Geqrf(core.Default(), m, n, aw, m, tau)
		}
	})
	b.Run("unblocked", func(b *testing.B) {
		aw := make([]float64, m*n)
		work := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(aw, a0)
			lapack.Geqr2(core.Default(), m, n, aw, m, tau, work)
		}
	})
}

// ---- Level-3 engine benchmarks (PR 1): packed/threaded GEMM vs the naive
// seed kernel, and the blocked LU riding on it. BENCH_blas.json is the
// machine-readable form, regenerated with `go run ./cmd/la90bench -blas`.

func benchGemmEngine(b *testing.B, n int, naive bool) {
	rng := lapack.NewRng([4]int{n, 7, 7, 7})
	a0 := make([]float64, n*n)
	b0 := make([]float64, n*n)
	lapack.Larnv(2, rng, n*n, a0)
	lapack.Larnv(2, rng, n*n, b0)
	c := make([]float64, n*n)
	// Untimed warm-up so -benchtime 1x measures steady state, not page
	// faults on the freshly allocated operands.
	blas.Gemm(core.Default(), blas.NoTrans, blas.NoTrans, n, n, n, 1.0, a0, n, b0, n, 0.0, c, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			blas.GemmNaive(blas.NoTrans, blas.NoTrans, n, n, n, 1.0, a0, n, b0, n, 0.0, c, n)
		} else {
			blas.Gemm(core.Default(), blas.NoTrans, blas.NoTrans, n, n, n, 1.0, a0, n, b0, n, 0.0, c, n)
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// BenchmarkGemm compares the packed engine (with its worker pool, sized by
// GOMAXPROCS or blas.SetThreads) against the retained naive kernel across
// the size sweep of the acceptance criteria.
func BenchmarkGemm(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		b.Run("packed/N="+itoa(n), func(b *testing.B) { benchGemmEngine(b, n, false) })
		b.Run("naive/N="+itoa(n), func(b *testing.B) { benchGemmEngine(b, n, true) })
	}
}

// BenchmarkGemmParallel pins the worker budget explicitly so the scaling of
// the macro-tile fan-out is visible regardless of GOMAXPROCS.
func BenchmarkGemmParallel(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		for _, n := range []int{256, 512, 1024} {
			b.Run("T="+itoa(threads)+"/N="+itoa(n), func(b *testing.B) {
				old := blas.SetThreads(threads)
				defer blas.SetThreads(old)
				benchGemmEngine(b, n, false)
			})
		}
	}
}

// BenchmarkGetrf tracks the lookahead-pipelined LU driver with its
// recursive panels; the trailing updates are GEMM-shaped and ride the
// packed engine. BENCH_lapack.json is the machine-readable form,
// regenerated with `go run ./cmd/la90bench -lapack`.
func BenchmarkGetrf(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		rng := lapack.NewRng([4]int{n, 3, 3, 3})
		a0 := make([]float64, n*n)
		lapack.Larnv(2, rng, n*n, a0)
		b.Run("N="+itoa(n), func(b *testing.B) {
			aw := make([]float64, n*n)
			ipiv := make([]int, n)
			copy(aw, a0)
			lapack.Getrf(core.Default(), n, n, aw, n, ipiv) // untimed warm-up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(aw, a0)
				lapack.Getrf(core.Default(), n, n, aw, n, ipiv)
			}
			flops := 2.0 / 3.0 * float64(n) * float64(n) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkPotrf tracks the recursive Cholesky, whose flops are one Trsm
// and one Herk per level — all Level 3.
func BenchmarkPotrf(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		rng := lapack.NewRng([4]int{n, 5, 5, 5})
		g := make([]float64, n*n)
		lapack.Larnv(2, rng, n*n, g)
		// a0 := G·Gᵀ + n·I is symmetric positive definite.
		a0 := make([]float64, n*n)
		blas.Gemm(core.Default(), blas.NoTrans, blas.TransT, n, n, n, 1.0, g, n, g, n, 0.0, a0, n)
		for i := 0; i < n; i++ {
			a0[i+i*n] += float64(n)
		}
		b.Run("N="+itoa(n), func(b *testing.B) {
			aw := make([]float64, n*n)
			copy(aw, a0)
			lapack.Potrf(core.Default(), lapack.Lower, n, aw, n) // untimed warm-up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(aw, a0)
				if info := lapack.Potrf(core.Default(), lapack.Lower, n, aw, n); info != 0 {
					b.Fatalf("info=%d", info)
				}
			}
			flops := 1.0 / 3.0 * float64(n) * float64(n) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkGeqrf tracks the blocked Householder QR: panel Geqr2 plus a
// Larft/Larfb pair per panel, both now routed through the GEMM engine.
func BenchmarkGeqrf(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		rng := lapack.NewRng([4]int{n, 9, 9, 9})
		a0 := make([]float64, n*n)
		lapack.Larnv(2, rng, n*n, a0)
		b.Run("N="+itoa(n), func(b *testing.B) {
			aw := make([]float64, n*n)
			tau := make([]float64, n)
			copy(aw, a0)
			lapack.Geqrf(core.Default(), n, n, aw, n, tau) // untimed warm-up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(aw, a0)
				lapack.Geqrf(core.Default(), n, n, aw, n, tau)
			}
			flops := 4.0 / 3.0 * float64(n) * float64(n) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}
